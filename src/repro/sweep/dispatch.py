"""Cell dispatchers: run a work list inline or across a process pool.

A dispatcher maps a function over items and returns results **in submission
order** no matter when each item finishes. Completion events are surfaced
through an ``on_result`` callback invoked in the orchestrating process (in
completion order), which is where the orchestrator persists finished cells
— workers never touch the store, so no cross-process locking is needed.

:class:`ProcessPoolDispatcher` fans items out over ``jobs`` OS processes —
the sweep layer's answer to the one-core ceiling of a single ``(R, n)``
batch: cells are embarrassingly parallel (independent derived seeds, no
shared state), so the pool scales wall-clock with cores while the ordered
collection keeps aggregate output bitwise identical to a serial run.

Fault tolerance
---------------

Both dispatchers accept a :class:`FaultPolicy` governing what happens when
a cell misbehaves. Three failure modes are survived on the pool path:

* **cell exception** — the worker function raised; the cell is retried up
  to ``max_retries`` times with exponential backoff plus jitter;
* **worker crash** — a worker process died (segfault, OOM kill,
  ``os._exit``), which poisons the whole :class:`ProcessPoolExecutor`
  (``BrokenProcessPool``); completed in-flight results are salvaged, the
  pool is rebuilt, and crashed attempts are retried;
* **hung cell** — a cell exceeded the per-cell ``timeout``; a watchdog
  kills the pool (the only way to abandon a running task in a process
  pool), requeues the innocent in-flight cells *without* charging them an
  attempt, and retries the hung cell. The serial dispatcher enforces the
  same budget by running each attempt in a watchdog thread and abandoning
  it on expiry (:func:`_call_with_timeout`).

Both dispatchers report retries, backoff, crashes, watchdog expiries, an
in-flight gauge, and per-attempt wall-clock into the ambient
:mod:`repro.telemetry` registry when one is installed; with telemetry off
(the default) the probes reduce to one ``None`` check per ``map``. The
same fault paths additionally emit structured events (``sweep.retry``,
``sweep.backoff``, ``sweep.worker_crash``, ``sweep.watchdog_expired``)
onto the ambient event log when one is installed — the ordered "what
happened" record behind ``--events-out``.

Because retried work functions are deterministic per item (sweep cells
carry their own derived seeds), a retry recomputes exactly the result the
failed attempt would have produced — fault recovery never changes output,
only wall-clock.

Cells that exhaust their retries either abort the map (``on_failure=
"raise"``, the default — queued work is cancelled and the pool torn down
promptly rather than draining) or complete as structured
:class:`FailedItem` values (``on_failure="record"``) that the sweep
orchestrator persists as failure records.

The watchdog relies on the pool never queueing more than one task per
worker (submission is throttled to ``jobs`` in-flight items), so every
in-flight item is genuinely *running* and its elapsed time is measured
from its real start. This also resolves the ``BrokenProcessPool``
ambiguity — the standard library cannot say which task killed the worker,
but every in-flight task was running in *some* worker, so each is charged
one crashed attempt (innocent neighbours lose one retry budget slot in
exchange for never mis-blaming a queued cell that had not started).
"""

from __future__ import annotations

import random
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

from ..telemetry.events import emit_event
from ..telemetry.registry import MetricsRegistry, current_registry

__all__ = [
    "FaultPolicy",
    "FailedItem",
    "CellTimeoutError",
    "BrokenWorkerError",
    "SerialDispatcher",
    "ProcessPoolDispatcher",
    "make_dispatcher",
]

T = TypeVar("T")
R = TypeVar("R")

OnResult = Callable[[int, R], None] | None

#: Lines kept from the end of a failing attempt's formatted traceback.
TRACEBACK_TAIL = 6


class CellTimeoutError(TimeoutError):
    """A cell exceeded the per-cell ``FaultPolicy.timeout`` budget."""


class BrokenWorkerError(RuntimeError):
    """A worker process died while (probably) running this cell.

    Deliberately *not* a ``BrokenProcessPool`` subclass: the dispatcher
    catches ``BrokenProcessPool`` to rebuild the pool, and this error must
    propagate to the caller instead of re-entering that recovery path.
    """


@dataclass(frozen=True)
class FaultPolicy:
    """What a dispatcher does when a cell fails.

    Parameters
    ----------
    max_retries:
        Extra attempts per cell after the first failure (0 = fail fast).
    backoff_base:
        Seconds slept before retry 1; retry ``k`` waits
        ``backoff_base * 2**(k-1)`` (capped at ``backoff_max``) plus up to
        ``jitter`` of itself in uniform random jitter, so simultaneous
        retries de-synchronize. ``0`` disables the sleep entirely — use
        that in tests.
    backoff_max:
        Upper bound on the exponential term, so deep retries do not sleep
        for minutes.
    jitter:
        Jitter fraction added on top of the exponential term (the sleep is
        uniform in ``[backoff, backoff * (1 + jitter)]``). Randomized sleep
        never affects results — cells are deterministic per seed.
    timeout:
        Per-cell wall-clock budget in seconds; ``None`` disables the
        watchdog. The pool dispatcher enforces it by killing and rebuilding
        the pool; the serial dispatcher runs each attempt in a watchdog
        thread and *abandons* it on expiry (threads cannot be preempted, so
        the zombie attempt keeps computing in the background while the
        dispatcher charges the timeout and moves on).
    on_failure:
        ``"raise"`` (default) re-raises the final error after retries are
        exhausted, cancelling all queued work; ``"record"`` completes the
        cell as a :class:`FailedItem` and keeps going.
    """

    max_retries: int = 0
    backoff_base: float = 0.1
    backoff_max: float = 30.0
    jitter: float = 0.5
    timeout: float | None = None
    on_failure: str = "raise"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_max < 0:
            raise ValueError(f"backoff_max must be >= 0, got {self.backoff_max}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.on_failure not in ("raise", "record"):
            raise ValueError(
                f"on_failure must be 'raise' or 'record', got {self.on_failure!r}"
            )

    def backoff(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based): exponential + jitter."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        if self.backoff_base <= 0:
            return 0.0
        base = min(self.backoff_max, self.backoff_base * 2 ** (attempt - 1))
        return base * (1.0 + self.jitter * random.random())


@dataclass
class FailedItem:
    """A cell that exhausted its retries under ``on_failure="record"``.

    Takes the place of the cell's result in the dispatcher's ordered
    output (and in ``on_result``), carrying everything a resume needs to
    know about *why* the cell failed: one entry per attempt with the error
    type, message, a formatted-traceback tail, and the failure kind
    (``"exception"``, ``"timeout"`` or ``"worker-crash"``).
    """

    index: int
    attempts: list[dict] = field(default_factory=list)

    @property
    def error_type(self) -> str:
        return self.attempts[-1]["type"] if self.attempts else "UnknownError"

    @property
    def message(self) -> str:
        return self.attempts[-1]["message"] if self.attempts else ""

    def describe(self) -> str:
        """Deterministic one-line rendering (the CSV ``error`` column)."""
        return f"{self.error_type}: {self.message}"

    def to_record(self) -> dict:
        """JSON-able failure record for the results store."""
        last = self.attempts[-1] if self.attempts else {}
        return {
            "type": self.error_type,
            "message": self.message,
            "kind": last.get("kind", "exception"),
            "traceback": list(last.get("traceback", [])),
            "attempts": len(self.attempts),
            "attempt_log": [dict(entry) for entry in self.attempts],
        }


def _exception_entry(exc: BaseException) -> dict:
    lines = traceback.format_exception(type(exc), exc, exc.__traceback__)
    tail = [line.rstrip() for line in "".join(lines).splitlines()[-TRACEBACK_TAIL:]]
    return {
        "kind": "exception",
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": tail,
    }


def _timeout_entry(timeout: float) -> dict:
    return {
        "kind": "timeout",
        "type": "CellTimeoutError",
        "message": f"cell exceeded the {timeout:g}s per-cell timeout",
        "traceback": [],
    }


def _crash_entry() -> dict:
    return {
        "kind": "worker-crash",
        "type": "BrokenWorkerError",
        "message": "worker process died while the cell was in flight (segfault/OOM/kill)",
        "traceback": [],
    }


class _DispatchMetrics:
    """Pre-resolved dispatcher metric children (one registry lookup per map).

    Both dispatchers report through the same family names, so ``jobs=1``
    and ``jobs=N`` runs of one grid aggregate identically.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.retries = registry.counter(
            "repro_sweep_retries_total",
            "Retry attempts granted after a charged cell failure "
            "(exception, timeout, or worker-crash charge).",
        )
        self.backoff = registry.counter(
            "repro_sweep_backoff_seconds_total",
            "Exponential-backoff delay seconds scheduled ahead of retries.",
        )
        self.crashes = registry.counter(
            "repro_sweep_worker_crashes_total",
            "Worker-pool breakage events (a worker process died and the "
            "pool was rebuilt); one event may charge several in-flight cells.",
        )
        self.watchdog = registry.counter(
            "repro_sweep_watchdog_expiries_total",
            "Per-cell timeout watchdog expiries (attempts abandoned over budget).",
        )
        self.inflight = registry.gauge(
            "repro_sweep_inflight_cells",
            "Cell attempts currently running in the dispatcher.",
        )
        self.cell_seconds = registry.histogram(
            "repro_cell_seconds",
            "Wall-clock seconds of finished cell attempts (successes and "
            "cell exceptions; crashed or timed-out attempts are censored).",
        )

    @classmethod
    def maybe(cls) -> "_DispatchMetrics | None":
        registry = current_registry()
        return cls(registry) if registry is not None else None


def _call_with_timeout(fn: Callable[[T], R], item: T, timeout: float) -> R:
    """Run ``fn(item)`` in a watchdog thread; give up after ``timeout``.

    Python threads cannot be preempted, so a timed-out attempt is
    *abandoned*, not killed: the daemon thread keeps computing in the
    background (it cannot block interpreter exit) while the caller charges
    the timeout and moves on — the serial analogue of the pool watchdog's
    discard-the-attempt semantics, at the cost of the zombie attempt's CPU
    until it finishes on its own. The thread starts with a fresh
    contextvars context, so it sees no ambient metrics registry and an
    abandoned attempt can never corrupt the parent's telemetry.
    """
    outcome: list[tuple[bool, object]] = []

    def _target() -> None:
        try:
            outcome.append((True, fn(item)))
        except BaseException as exc:  # ship the failure back by value
            outcome.append((False, exc))

    thread = threading.Thread(target=_target, name="repro-serial-cell", daemon=True)
    thread.start()
    thread.join(timeout)
    if not outcome:
        raise CellTimeoutError(f"cell exceeded the {timeout:g}s per-cell timeout")
    ok, value = outcome[0]
    if ok:
        return value  # type: ignore[return-value]
    raise value  # type: ignore[misc]


class SerialDispatcher:
    """Run every item inline in the calling process (``jobs=1``).

    Also the fallback of choice for debugging: tracebacks surface directly
    and no subprocess machinery is involved. Honors ``FaultPolicy`` retries
    and failure recording. When the policy sets a per-cell ``timeout``,
    each attempt runs in a watchdog thread (:func:`_call_with_timeout`) and
    is abandoned on expiry; without a timeout, attempts run truly inline so
    debuggers and profilers see the plain call stack.
    """

    jobs = 1

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        on_result: OnResult = None,
        policy: FaultPolicy | None = None,
    ) -> list[R]:
        policy = policy if policy is not None else FaultPolicy()
        metrics = _DispatchMetrics.maybe()
        results: list[R] = []
        for index, item in enumerate(items):
            attempt_log: list[dict] = []
            while True:
                entry: dict | None = None
                failure: BaseException | None = None
                if metrics is not None:
                    metrics.inflight.inc()
                attempt_start = time.perf_counter()
                try:
                    if policy.timeout is not None:
                        result: R = _call_with_timeout(fn, item, policy.timeout)
                    else:
                        result = fn(item)
                except CellTimeoutError as exc:
                    entry = _timeout_entry(policy.timeout or 0.0)
                    failure = exc
                    if metrics is not None:
                        metrics.watchdog.inc()
                    emit_event(
                        "sweep.watchdog_expired", item=index, timeout_s=policy.timeout
                    )
                except Exception as exc:
                    entry = _exception_entry(exc)
                    failure = exc
                    if metrics is not None:
                        metrics.cell_seconds.observe(time.perf_counter() - attempt_start)
                else:
                    if metrics is not None:
                        metrics.cell_seconds.observe(time.perf_counter() - attempt_start)
                finally:
                    if metrics is not None:
                        metrics.inflight.dec()
                if entry is None:
                    break
                entry["attempt"] = len(attempt_log) + 1
                attempt_log.append(entry)
                if len(attempt_log) <= policy.max_retries:
                    delay = policy.backoff(len(attempt_log))
                    if metrics is not None:
                        metrics.retries.inc()
                        metrics.backoff.inc(delay)
                    emit_event(
                        "sweep.retry",
                        item=index,
                        attempt=len(attempt_log),
                        error=entry["type"],
                        delay_s=round(delay, 6),
                    )
                    if delay > 0:
                        emit_event("sweep.backoff", item=index, delay_s=round(delay, 6))
                        time.sleep(delay)
                    continue
                if policy.on_failure == "record":
                    result = FailedItem(index=index, attempts=attempt_log)  # type: ignore[assignment]
                    break
                raise failure
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


class _MapState:
    """Bookkeeping for one fault-tolerant :meth:`ProcessPoolDispatcher.map`.

    Tracks, per item index: the collected result, failed-attempt log, the
    last exception (re-raised under ``on_failure="raise"``), and the
    backoff gate (``not_before``) in front of each retry.
    """

    def __init__(self, count: int, policy: FaultPolicy, on_result: OnResult) -> None:
        self.policy = policy
        self.on_result = on_result
        self.metrics = _DispatchMetrics.maybe()
        self.results: list = [None] * count
        self.done = [False] * count
        self.attempt_log: list[list[dict]] = [[] for _ in range(count)]
        self.last_exc: list[BaseException | None] = [None] * count
        self.ready: list[int] = list(range(count))
        self.not_before = [0.0] * count

    @property
    def outstanding(self) -> int:
        return self.done.count(False)

    def succeed(self, index: int, result) -> None:
        self.results[index] = result
        self.done[index] = True
        if self.on_result is not None:
            self.on_result(index, result)

    def requeue(self, index: int) -> None:
        """Resubmit without charging an attempt (innocent pool-kill victim)."""
        self.ready.append(index)

    def fail(self, index: int, entry: dict, exc: BaseException) -> None:
        """Charge one failed attempt; requeue (after backoff) or finalize."""
        entry = dict(entry)
        entry["attempt"] = len(self.attempt_log[index]) + 1
        self.attempt_log[index].append(entry)
        self.last_exc[index] = exc
        attempts = len(self.attempt_log[index])
        if attempts <= self.policy.max_retries:
            delay = self.policy.backoff(attempts)
            self.not_before[index] = time.monotonic() + delay
            if self.metrics is not None:
                self.metrics.retries.inc()
                self.metrics.backoff.inc(delay)
            emit_event(
                "sweep.retry",
                item=index,
                attempt=attempts,
                error=entry["type"],
                delay_s=round(delay, 6),
            )
            if delay > 0:
                emit_event("sweep.backoff", item=index, delay_s=round(delay, 6))
            self.ready.append(index)
            return
        if self.policy.on_failure == "record":
            self.succeed(index, FailedItem(index=index, attempts=self.attempt_log[index]))
            return
        raise exc


class ProcessPoolDispatcher:
    """Fan items out over ``jobs`` worker processes, collect in order.

    ``fn`` and the items must be picklable and ``fn`` must be deterministic
    per item (sweep cells carry their own seeds, so this holds by
    construction). Failure handling is governed by the ``policy`` passed to
    :meth:`map` — see the module docstring for the three survived failure
    modes. Under the default policy (no retries, ``on_failure="raise"``) a
    worker exception propagates to the caller *promptly*: in-flight and
    queued work is cancelled and the pool torn down instead of draining
    every remaining cell first.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        on_result: OnResult = None,
        policy: FaultPolicy | None = None,
    ) -> list[R]:
        policy = policy if policy is not None else FaultPolicy()
        items = list(items)
        if not items:
            return []
        state = _MapState(len(items), policy, on_result)
        while state.outstanding:
            max_workers = min(self.jobs, state.outstanding)
            executor = ProcessPoolExecutor(max_workers=max_workers)
            graceful = False
            try:
                graceful = self._run_pool(executor, max_workers, fn, items, state)
            finally:
                if graceful:
                    executor.shutdown(wait=True)
                else:
                    self._kill_pool(executor)
        if state.metrics is not None:
            state.metrics.inflight.set(0)
        return state.results

    # ------------------------------------------------------------ internals

    def _run_pool(
        self,
        executor: ProcessPoolExecutor,
        max_workers: int,
        fn: Callable[[T], R],
        items: list[T],
        state: _MapState,
    ) -> bool:
        """Drive one pool until the work drains (``True``) or it must be
        killed and rebuilt (``False``: a hung cell or a dead worker)."""
        inflight: dict[Future, int] = {}
        started: dict[int, float] = {}
        try:
            while state.ready or inflight:
                self._submit_eligible(executor, max_workers, fn, items, state, inflight, started)
                if not inflight:
                    # Everything runnable is behind its backoff gate.
                    gate = min(state.not_before[index] for index in state.ready)
                    delay = gate - time.monotonic()
                    if delay > 0:
                        time.sleep(min(delay, 0.5))
                    continue
                done, _ = wait(
                    list(inflight), timeout=self._tick(state, inflight, started),
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    index = inflight[future]
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        raise  # handled below: charge in-flight, rebuild
                    except Exception as exc:
                        inflight.pop(future)
                        begun = started.pop(index, None)
                        if state.metrics is not None and begun is not None:
                            state.metrics.cell_seconds.observe(time.monotonic() - begun)
                        state.fail(index, _exception_entry(exc), exc)
                    else:
                        inflight.pop(future)
                        begun = started.pop(index, None)
                        if state.metrics is not None and begun is not None:
                            state.metrics.cell_seconds.observe(time.monotonic() - begun)
                        state.succeed(index, result)
                if state.metrics is not None:
                    state.metrics.inflight.set(len(inflight))
                if policy_timeout := state.policy.timeout:
                    if self._expire_timeouts(policy_timeout, state, inflight, started):
                        return False
        except BrokenProcessPool:
            # A worker died abruptly. Submission is throttled to one task
            # per worker, so every in-flight future was running in some
            # worker: salvage the ones that completed, charge the rest one
            # crashed attempt each. Counted as ONE breakage event — the
            # stdlib cannot say which cell killed the worker, and charging
            # the metric per in-flight cell would over-report a single
            # death by up to ``jobs``.
            if state.metrics is not None:
                state.metrics.crashes.inc()
            emit_event("sweep.worker_crash", inflight=len(inflight))
            for future, index in list(inflight.items()):
                if future.done():
                    try:
                        state.succeed(index, future.result())
                        continue
                    except Exception:
                        pass
                state.fail(
                    index,
                    _crash_entry(),
                    BrokenWorkerError(
                        f"worker process died while item {index} was in flight"
                    ),
                )
            return False
        return True

    def _submit_eligible(
        self,
        executor: ProcessPoolExecutor,
        max_workers: int,
        fn: Callable[[T], R],
        items: list[T],
        state: _MapState,
        inflight: dict[Future, int],
        started: dict[int, float],
    ) -> None:
        """Top the pool up to one in-flight task per worker.

        Throttling to ``max_workers`` (instead of submitting everything up
        front) is what makes the watchdog honest: every submitted item is
        actually running, so its elapsed time starts at submission.
        """
        capacity = max_workers - len(inflight)
        if capacity <= 0 or not state.ready:
            return
        now = time.monotonic()
        still_gated: list[int] = []
        for index in state.ready:
            if capacity > 0 and state.not_before[index] <= now:
                future = executor.submit(fn, items[index])
                inflight[future] = index
                started[index] = time.monotonic()
                capacity -= 1
            else:
                still_gated.append(index)
        state.ready = still_gated
        if state.metrics is not None:
            state.metrics.inflight.set(len(inflight))

    def _tick(
        self, state: _MapState, inflight: dict[Future, int], started: dict[int, float]
    ) -> float | None:
        """How long :func:`wait` may block before the watchdog must look."""
        wake_at: list[float] = []
        if state.ready:
            # Wake for the earliest backoff gate so gated retries resubmit
            # even while long cells are still running.
            wake_at.append(min(state.not_before[index] for index in state.ready))
        if state.policy.timeout is not None:
            wake_at.append(
                min(started[index] for index in inflight.values())
                + state.policy.timeout
                + 0.01
            )
        if not wake_at:
            return None
        return max(0.05, min(wake_at) - time.monotonic())

    def _expire_timeouts(
        self,
        timeout: float,
        state: _MapState,
        inflight: dict[Future, int],
        started: dict[int, float],
    ) -> bool:
        """Charge cells over budget; requeue innocent in-flight neighbours.

        Returns ``True`` when anything expired — the caller must kill the
        pool, because a running task in a ``ProcessPoolExecutor`` cannot be
        cancelled any other way. The innocents are requeued *without* an
        attempt charge (their computation dies with the pool through no
        fault of their own) and recompute identically on the rebuilt pool.
        """
        now = time.monotonic()
        expired = [
            (future, index)
            for future, index in inflight.items()
            if now - started[index] >= timeout
        ]
        if not expired:
            return False
        for future, index in expired:
            inflight.pop(future)
            started.pop(index, None)
            if state.metrics is not None:
                state.metrics.watchdog.inc()
            emit_event("sweep.watchdog_expired", item=index, timeout_s=timeout)
            state.fail(
                index,
                _timeout_entry(timeout),
                CellTimeoutError(
                    f"item {index} exceeded the {timeout:g}s per-cell timeout"
                ),
            )
        for future, index in inflight.items():
            state.requeue(index)
        return True

    @staticmethod
    def _kill_pool(executor: ProcessPoolExecutor) -> None:
        """Tear a pool down *now*: SIGKILL workers, cancel queued futures.

        SIGKILL (not terminate) because the reason we are here may be a
        worker hung in uninterruptible state. Touches the private
        ``_processes`` map — the stdlib offers no public way to abandon a
        running task, and this attribute has been stable since 3.8.
        """
        processes = list((getattr(executor, "_processes", None) or {}).values())
        for process in processes:
            process.kill()
        executor.shutdown(wait=True, cancel_futures=True)


def make_dispatcher(jobs: int) -> SerialDispatcher | ProcessPoolDispatcher:
    """Serial for ``jobs <= 1``, a process pool otherwise."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return SerialDispatcher() if jobs == 1 else ProcessPoolDispatcher(jobs)
