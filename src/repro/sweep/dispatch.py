"""Cell dispatchers: run a work list inline or across a process pool.

A dispatcher maps a function over items and returns results **in submission
order** no matter when each item finishes. Completion events are surfaced
through an ``on_result`` callback invoked in the orchestrating process (in
completion order), which is where the orchestrator persists finished cells
— workers never touch the store, so no cross-process locking is needed.

:class:`ProcessPoolDispatcher` fans items out over ``jobs`` OS processes —
the sweep layer's answer to the one-core ceiling of a single ``(R, n)``
batch: cells are embarrassingly parallel (independent derived seeds, no
shared state), so the pool scales wall-clock with cores while the ordered
collection keeps aggregate output bitwise identical to a serial run.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Sequence, TypeVar

__all__ = ["SerialDispatcher", "ProcessPoolDispatcher", "make_dispatcher"]

T = TypeVar("T")
R = TypeVar("R")

OnResult = Callable[[int, R], None] | None


class SerialDispatcher:
    """Run every item inline in the calling process (``jobs=1``).

    Also the fallback of choice for debugging: tracebacks surface directly
    and no subprocess machinery is involved.
    """

    jobs = 1

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        on_result: OnResult = None,
    ) -> list[R]:
        results: list[R] = []
        for index, item in enumerate(items):
            result = fn(item)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


class ProcessPoolDispatcher:
    """Fan items out over ``jobs`` worker processes, collect in order.

    ``fn`` and the items must be picklable and ``fn`` must be deterministic
    per item (sweep cells carry their own seeds, so this holds by
    construction). A worker exception propagates to the caller after the
    pool shuts down; already-completed items will have been reported through
    ``on_result``, so a store-backed sweep loses nothing.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        on_result: OnResult = None,
    ) -> list[R]:
        items = list(items)
        if not items:
            return []
        results: list[R | None] = [None] * len(items)
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(items))) as executor:
            futures = {executor.submit(fn, item): index for index, item in enumerate(items)}
            for future in as_completed(futures):
                index = futures[future]
                result = future.result()
                results[index] = result
                if on_result is not None:
                    on_result(index, result)
        return results  # type: ignore[return-value]


def make_dispatcher(jobs: int) -> SerialDispatcher | ProcessPoolDispatcher:
    """Serial for ``jobs <= 1``, a process pool otherwise."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return SerialDispatcher() if jobs == 1 else ProcessPoolDispatcher(jobs)
