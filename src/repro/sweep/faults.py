"""Deterministic fault injection: a chaos layer for the sweep stack.

The paper's protocols are tested under adversarial starts and noise; this
module applies the same discipline to the *execution substrate*. A
:class:`FaultPlan` names, per cell index and attempt number, one of three
faults, and :class:`FaultInjector` wraps a work function (normally
:func:`~repro.sweep.runner.execute_cell`) so those faults actually happen
inside pool workers:

``"raise"``
    The attempt raises :class:`InjectedFault` — a plain cell exception.
``"hang"``
    The attempt sleeps ``hang_seconds`` before proceeding — long enough
    (default one hour) that only the dispatcher's timeout watchdog can
    recover it; with a small ``hang_seconds`` it instead models a
    transiently slow cell that finishes late.
``"kill"``
    The attempt calls ``os._exit(1)`` — the worker process dies without
    cleanup, exactly like a segfault or an OOM kill, poisoning the whole
    process pool.

Everything is reproducible: a plan is either written out explicitly or
derived from a seed (:meth:`FaultPlan.sample`), and attempt numbers are
counted through small files in a scratch directory, which is what lets an
injector running in *different worker processes across pool rebuilds*
agree on which attempt a cell is on (attempts of one cell are serialized
by the dispatcher, so no locking is needed). The injected faults therefore
land on exactly the chosen (cell, attempt) pairs at any job count — the
property the chaos acceptance tests in ``tests/test_faults.py`` build on:
a faulted sweep, once recovered, is bitwise identical to a fault-free run.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

__all__ = ["FAULT_KINDS", "InjectedFault", "FaultPlan", "FaultInjector"]

#: The injectable fault kinds.
FAULT_KINDS = ("raise", "hang", "kill")


class InjectedFault(RuntimeError):
    """The exception raised by a planned ``"raise"`` fault."""


@dataclass(frozen=True)
class FaultPlan:
    """Which fault (if any) hits each (cell index, attempt number) pair.

    ``faults`` maps a cell's index in the dispatched item list to a mapping
    from 0-based attempt number to a fault kind. Pairs not named run clean,
    so ``{3: {0: "kill"}}`` kills the worker on cell 3's first attempt and
    lets every retry through.
    """

    faults: Mapping[int, Mapping[int, str]] = field(default_factory=dict)
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.hang_seconds < 0:
            raise ValueError(f"hang_seconds must be >= 0, got {self.hang_seconds}")
        for index, per_attempt in self.faults.items():
            for attempt, kind in per_attempt.items():
                if kind not in FAULT_KINDS:
                    raise ValueError(
                        f"unknown fault kind {kind!r} for cell {index} attempt "
                        f"{attempt}; known kinds: {FAULT_KINDS}"
                    )

    def fault_for(self, index: int, attempt: int) -> str | None:
        """The planned fault for this (cell, attempt), or ``None``."""
        return self.faults.get(index, {}).get(attempt)

    @property
    def faulted_cells(self) -> tuple[int, ...]:
        """Cell indices carrying at least one planned fault, sorted."""
        return tuple(sorted(self.faults))

    @classmethod
    def sample(
        cls,
        num_cells: int,
        *,
        seed: int,
        rate: float = 0.3,
        kinds: Sequence[str] = ("raise",),
        attempts: Sequence[int] = (0,),
        hang_seconds: float = 3600.0,
    ) -> "FaultPlan":
        """Derive a reproducible random plan from a seed.

        Each (cell, attempt) pair in ``range(num_cells) x attempts``
        independently draws a fault with probability ``rate``, its kind
        uniform over ``kinds``. The same seed always yields the same plan,
        so a chaos test can be re-run bit-for-bit.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}; known kinds: {FAULT_KINDS}")
        rng = np.random.default_rng(seed)
        faults: dict[int, dict[int, str]] = {}
        for index in range(num_cells):
            for attempt in attempts:
                if rng.random() < rate:
                    faults.setdefault(index, {})[int(attempt)] = str(
                        kinds[int(rng.integers(len(kinds)))]
                    )
        return cls(faults=faults, hang_seconds=hang_seconds)


def _item_key(item) -> str:
    """A stable string identity for a work item (cells expose ``key()``)."""
    key = getattr(item, "key", None)
    if callable(key):
        return str(key())
    return repr(item)


class FaultInjector:
    """Picklable work-function wrapper that applies a :class:`FaultPlan`.

    Built from the exact item list that will be dispatched (plan indices
    refer to positions in that list) and a scratch directory for the
    cross-process attempt counters. Instances ship to pool workers by
    pickle — they hold only plain dicts, the plan, a path, and the wrapped
    function (which must itself be picklable, as pool work functions
    already are).
    """

    def __init__(
        self,
        fn: Callable,
        plan: FaultPlan,
        items: Sequence,
        counter_dir: str | Path,
    ) -> None:
        self.fn = fn
        self.plan = plan
        self.counter_dir = Path(counter_dir)
        self._index_of = {_item_key(item): index for index, item in enumerate(items)}
        if len(self._index_of) != len(items):
            raise ValueError("items must have distinct keys to address faults by index")
        missing = [index for index in plan.faults if index >= len(items)]
        if missing:
            raise ValueError(f"plan names cell indices beyond the item list: {missing}")

    # ------------------------------------------------------ attempt counting

    def _counter_path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode()).hexdigest()[:24]
        return self.counter_dir / f"{digest}.attempt"

    def _bump_attempt(self, key: str) -> int:
        """Return this call's 0-based attempt number and persist the bump.

        File-based so attempts survive worker death and pool rebuilds; safe
        without locking because the dispatcher never runs two attempts of
        the same cell concurrently.
        """
        path = self._counter_path(key)
        attempt = int(path.read_text()) if path.exists() else 0
        self.counter_dir.mkdir(parents=True, exist_ok=True)
        path.write_text(str(attempt + 1))
        return attempt

    def attempts_seen(self, item) -> int:
        """How many attempts of ``item`` have started (for assertions)."""
        path = self._counter_path(_item_key(item))
        return int(path.read_text()) if path.exists() else 0

    # -------------------------------------------------------------- the hook

    def __call__(self, item):
        key = _item_key(item)
        index = self._index_of[key]
        attempt = self._bump_attempt(key)
        kind = self.plan.fault_for(index, attempt)
        if kind == "raise":
            raise InjectedFault(f"injected exception: cell {index}, attempt {attempt}")
        if kind == "hang":
            time.sleep(self.plan.hang_seconds)
        elif kind == "kill":
            os._exit(1)
        return self.fn(item)
