"""repro — reproduction of Korman & Vacus (PODC 2022).

"Early Adapting to Trends: Self-Stabilizing Information Spread using Passive
Communication" (arXiv:2203.11522). The package provides:

* the **FET** protocol (Protocol 1) and the full PULL-model simulation
  substrate it runs on (:mod:`repro.core`, :mod:`repro.protocols`);
* baselines: the simple-trend variant, classic opinion dynamics (voter,
  3-majority, undecided-state, sample-majority), the oracle-clock two-subphase
  scheme and a decoupled-message clock-sync protocol;
* the paper's analytical machinery: exact binomial coin competitions
  (Lemmas 12–15), the drift function ``g`` of Eq. (7) and its fixed points,
  the Figure 1a / Figure 2 domain partitions, the exact pair Markov chain of
  Observation 1, and the per-lemma dwell-time bounds
  (:mod:`repro.analysis`);
* experiment harnesses and statistics used by the benchmark suite
  (:mod:`repro.experiments`, :mod:`repro.stats`, :mod:`repro.viz`);
* the parallel sweep orchestrator (:mod:`repro.sweep`): declarative
  experiment grids fanned out over worker processes with a persistent,
  resumable results store — the front door is ``python -m repro sweep``;
* the trace subsystem (:mod:`repro.trace`): batched per-replica trajectory
  recording (full, strided, or ring-buffered) with vectorized trace-derived
  measures — the layer that runs the trajectory-shaped workloads
  (``keep_results``, Figure 1b transitions, θ/settle sweeps) on the batched
  engine; ``python -m repro trace`` charts and exports recorded runs;
* the telemetry subsystem (:mod:`repro.telemetry`): a dependency-free
  metrics registry (counters/gauges/histograms, off by default) wired
  through the engines, dispatchers, orchestrator, and store, with
  Prometheus text exposition, deterministic cross-process aggregation,
  and a live sweep progress line — ``python -m repro metrics`` and the
  ``--progress`` / ``--metrics-out`` sweep flags surface it.

Quickstart::

    from repro import FETProtocol, ell_for, make_population, run_protocol
    from repro.initializers import AllWrong
    from repro.core import make_rng

    n = 1000
    rng = make_rng(0)
    protocol = FETProtocol(ell_for(n))
    population = make_population(n, correct_opinion=1)
    state = protocol.init_state(n, rng)
    AllWrong()(population, protocol, state, rng)
    result = run_protocol(protocol, population, max_rounds=2000, rng=rng, state=state)
    print(result.converged, result.rounds)
"""

from .config import RunSpec
from .analysis import (
    Domain,
    DomainPartition,
    ExactPairChain,
    YellowArea,
    compare_binomials,
    drift_g,
    fixed_point_f,
    theorem1_bound,
)
from .core import (
    BinomialCountSampler,
    IndexSampler,
    PopulationState,
    Protocol,
    RunResult,
    SynchronousEngine,
    make_majority_population,
    make_population,
    make_rng,
    run_protocol,
)
from .protocols import (
    ClockSyncProtocol,
    FETProtocol,
    MajorityProtocol,
    MajoritySamplingProtocol,
    OracleClockProtocol,
    SimpleTrendProtocol,
    UndecidedStateProtocol,
    VoterProtocol,
    ell_for,
)
from .sweep import ResultsStore, SweepResult, SweepSpec, run_sweep
from .trace import BatchTrace, FullTrace, RingBufferTrace, TraceRecorder

__version__ = "1.6.0"

__all__ = [
    "BatchTrace",
    "BinomialCountSampler",
    "ClockSyncProtocol",
    "Domain",
    "DomainPartition",
    "ExactPairChain",
    "FETProtocol",
    "FullTrace",
    "IndexSampler",
    "MajorityProtocol",
    "MajoritySamplingProtocol",
    "OracleClockProtocol",
    "PopulationState",
    "Protocol",
    "ResultsStore",
    "RunSpec",
    "RingBufferTrace",
    "RunResult",
    "SimpleTrendProtocol",
    "SweepResult",
    "SweepSpec",
    "SynchronousEngine",
    "TraceRecorder",
    "UndecidedStateProtocol",
    "VoterProtocol",
    "YellowArea",
    "compare_binomials",
    "drift_g",
    "ell_for",
    "fixed_point_f",
    "make_majority_population",
    "make_population",
    "make_rng",
    "run_protocol",
    "run_sweep",
    "theorem1_bound",
    "__version__",
]
