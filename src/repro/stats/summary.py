"""Summary statistics for experiment results.

Finite-trial estimates of the paper's "with high probability" statements use
Wilson score intervals for success rates; convergence-time distributions are
reported by mean / median / tail quantiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["wilson_interval", "describe_times", "TimesSummary"]


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because experiment success rates
    sit near 1 where the normal interval degenerates.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must lie in [0, trials], got {successes}/{trials}")
    phat = successes / trials
    denom = 1 + z * z / trials
    centre = phat + z * z / (2 * trials)
    half = z * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
    return (max(0.0, (centre - half) / denom), min(1.0, (centre + half) / denom))


@dataclass(frozen=True)
class TimesSummary:
    """Distribution summary of convergence times over successful trials."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float
    minimum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p95": self.p95,
            "max": self.maximum,
            "min": self.minimum,
        }


def describe_times(times: np.ndarray | list[float]) -> TimesSummary:
    """Summarize a (possibly empty) vector of convergence times."""
    arr = np.asarray(times, dtype=float)
    if arr.size == 0:
        nan = float("nan")
        return TimesSummary(count=0, mean=nan, median=nan, p95=nan, maximum=nan, minimum=nan)
    return TimesSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        p95=float(np.quantile(arr, 0.95)),
        maximum=float(arr.max()),
        minimum=float(arr.min()),
    )
