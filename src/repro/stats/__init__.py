"""Statistics helpers: summaries, confidence intervals, scaling fits."""

from .fitting import LogPowerFit, fit_log_power
from .summary import TimesSummary, describe_times, wilson_interval

__all__ = [
    "LogPowerFit",
    "TimesSummary",
    "describe_times",
    "fit_log_power",
    "wilson_interval",
]
