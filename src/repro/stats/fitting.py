"""Scaling-law fits.

Theorem 1 predicts convergence time ``T(n) = O(log^{5/2} n)``. The headline
benchmark fits the two-parameter model ``T(n) = a · (ln n)^b`` to measured
medians by ordinary least squares in the doubly-logarithmic coordinates
``ln T = ln a + b · ln ln n``, and reports the exponent ``b`` with its R².
The paper's upper bound corresponds to ``b ≤ 2.5``; the measured exponent is
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["LogPowerFit", "fit_log_power"]


@dataclass(frozen=True)
class LogPowerFit:
    """Result of fitting ``T(n) = a · (ln n)^b``."""

    a: float
    b: float
    r_squared: float

    def predict(self, n: int | float | np.ndarray) -> np.ndarray:
        """Evaluate the fitted law at population size(s) ``n``."""
        n_arr = np.asarray(n, dtype=float)
        return self.a * np.log(n_arr) ** self.b


def fit_log_power(ns: np.ndarray | list[int], times: np.ndarray | list[float]) -> LogPowerFit:
    """Least-squares fit of ``T = a·(ln n)^b`` over (n, T) observations.

    Requires at least three points, n > e (so ``ln ln n > 0`` is safe for the
    transform — strictly we only need ``ln n > 0`` and distinct values), and
    strictly positive times.
    """
    ns_arr = np.asarray(ns, dtype=float)
    t_arr = np.asarray(times, dtype=float)
    if ns_arr.shape != t_arr.shape:
        raise ValueError("ns and times must have matching shapes")
    if ns_arr.size < 3:
        raise ValueError(f"need at least 3 points to fit, got {ns_arr.size}")
    if (ns_arr <= math.e).any():
        raise ValueError("all n must exceed e for the log-log transform")
    if (t_arr <= 0).any():
        raise ValueError("all times must be positive")
    u = np.log(np.log(ns_arr))
    v = np.log(t_arr)
    if np.allclose(u, u[0]):
        raise ValueError("population sizes are too clustered to identify an exponent")
    b, log_a = np.polyfit(u, v, 1)
    residuals = v - (log_a + b * u)
    ss_res = float((residuals**2).sum())
    ss_tot = float(((v - v.mean()) ** 2).sum())
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return LogPowerFit(a=float(math.exp(log_a)), b=float(b), r_squared=r_squared)
