"""Mean-field drift of the FET Markov chain.

Observation 1 of the paper gives the conditional law of ``x_{t+2}`` given the
pair ``(x_t, x_{t+1})``. Its expectation is the function ``g`` of Eq. (7):

    g(x, y) = P(B_ℓ(y) > B_ℓ(x)) + y·P(B_ℓ(y) = B_ℓ(x))
              + (1/n)·(1 − P(B_ℓ(y) ≥ B_ℓ(x)))

so that ``E[x_{t+2} | x_t = x, x_{t+1} = y] = g(x, y)``. Section 3.2 studies
the fixed points of ``y ↦ g(x, y)`` on ``[x, x + 1/√ℓ]`` (Claim 2) and shows
the map ``f(x)`` amplifies the distance from 1/2 by a factor
``1 + c₄/√ℓ`` (Claim 3 / Eq. (9)) — the engine behind escaping the Yellow
region. This module computes all of these exactly.
"""

from __future__ import annotations

import math

import numpy as np

from .coins import compare_binomials, compare_grid

__all__ = [
    "drift_g",
    "drift_grid",
    "fixed_point_f",
    "amplification_factor",
    "expected_next_pair",
]


def drift_g(x: float, y: float, ell: int, n: int) -> float:
    """Eq. (7): expected next fraction given the last two fractions.

    ``x`` is ``x_t``, ``y`` is ``x_{t+1}``; the source is assumed to hold
    opinion 1 (the convention of the whole analysis).
    """
    if not (0.0 <= x <= 1.0 and 0.0 <= y <= 1.0):
        raise ValueError(f"fractions must lie in [0, 1], got x={x}, y={y}")
    cmp_ = compare_binomials(ell, y, x)  # first coin is y: P(B(y) > B(x))
    p_gt = cmp_.p_first_wins
    p_eq = cmp_.p_tie
    p_ge = p_gt + p_eq
    value = p_gt + y * p_eq + (1.0 - p_ge) / n
    # The expression is a probability-weighted average, so it lies in [0, 1];
    # clamp the few ulps of accumulated floating error.
    return min(1.0, max(0.0, value))


def drift_grid(
    xs: np.ndarray,
    ys: np.ndarray,
    ell: int,
    n: int,
) -> np.ndarray:
    """Vectorized ``g`` over a grid.

    Returns ``G[i, j] = g(xs[j], ys[i])`` — rows index ``y`` (``x_{t+1}``),
    columns index ``x`` (``x_t``), matching the axes of Figure 1a.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    gt, eq = compare_grid(ell, ys, xs)  # gt[i, j] = P(B(ys[i]) > B(xs[j]))
    ge = gt + eq
    return np.clip(gt + ys[:, None] * eq + (1.0 - ge) / n, 0.0, 1.0)


def fixed_point_f(x: float, ell: int, n: int, *, tol: float = 1e-12) -> float:
    """The map ``f(x)`` of Section 3.2.

    For ``x ∈ [1/2 + 4/n, 1/2 + 4δ]``: the unique solution of ``y = g(x, y)``
    on ``[x, x + 1/√ℓ]`` if one exists (Claim 2 guarantees at most one),
    otherwise ``x + 1/√ℓ``. Solved by bisection on ``h(y) = g(x, y) − y``,
    which Claim 1 shows is strictly increasing on the interval.
    """
    lo = x
    hi = min(1.0, x + 1.0 / math.sqrt(ell))

    def h(y: float) -> float:
        return drift_g(x, y, ell, n) - y

    h_lo = h(lo)
    h_hi = h(hi)
    if h_lo >= 0.0:
        # g(x, x) >= x can only happen below the 1/2 + 4/n threshold; Claim 2
        # does not apply there. Return lo — the caller asked for the boundary
        # fixed point.
        return lo
    if h_hi < 0.0:
        return hi
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if h(mid) < 0.0:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    return 0.5 * (lo + hi)


def amplification_factor(x: float, ell: int, n: int) -> float:
    """``(f(x) − 1/2) / (x − 1/2)``: the per-application gain of Eq. (9).

    Claim 3 / Eq. (9) guarantee this exceeds ``1 + 1/(4α√ℓ)`` for
    ``x ∈ [1/2 + 4/n, 1/2 + 4δ]``.
    """
    if x <= 0.5:
        raise ValueError(f"amplification is defined for x > 1/2, got {x}")
    return (fixed_point_f(x, ell, n) - 0.5) / (x - 0.5)


def expected_next_pair(x: float, y: float, ell: int, n: int) -> tuple[float, float]:
    """One mean-field step of the pair chain: ``(x_t, x_{t+1}) → (x_{t+1}, E[x_{t+2}])``.

    Useful for tracing the deterministic skeleton of the dynamics over
    Figure 1a (example ``trend_anatomy.py`` draws these orbits).
    """
    return y, drift_g(x, y, ell, n)
