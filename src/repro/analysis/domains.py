"""Domain partitions of the state grid (Figures 1a and 2).

The proof of Theorem 1 tracks the Markov chain of consecutive fractions
``(x_t, x_{t+1})`` through a partition of the unit square into domains
(Section 2.1): **Green** (high speed — consensus next round), **Purple**
(moderate fraction, low speed — jumps to Green), **Red** (contracting toward
0/1 — leaves in poly-log rounds), **Cyan** (near-consensus on the wrong
opinion — "bounces back"), and **Yellow** (the slow centre). Section 3
refines a bounding square ``Yellow′`` into areas **A / B / C**.

This module implements both classifiers exactly as defined (with the single
evident typo fix documented in DESIGN.md §5), with a fixed precedence order
to resolve the few boundary/corner overlaps the paper's prose glosses over.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["Domain", "YellowArea", "DomainPartition", "DEFAULT_DELTA"]

#: Default δ for the partition; the paper requires 0 < δ < 1/2.
DEFAULT_DELTA = 0.05


class Domain(Enum):
    """Domains of Figure 1a (side-1 and side-0 variants) plus NONE."""

    GREEN1 = "Green1"
    GREEN0 = "Green0"
    PURPLE1 = "Purple1"
    PURPLE0 = "Purple0"
    RED1 = "Red1"
    RED0 = "Red0"
    CYAN1 = "Cyan1"
    CYAN0 = "Cyan0"
    YELLOW = "Yellow"
    NONE = "None"

    @property
    def family(self) -> str:
        """Side-agnostic family name: 'Green', 'Purple', …, 'None'."""
        return self.value.rstrip("01")


class YellowArea(Enum):
    """Areas of the Yellow′ square (Figure 2), plus OUTSIDE."""

    A1 = "A1"
    B1 = "B1"
    C1 = "C1"
    A0 = "A0"
    B0 = "B0"
    C0 = "C0"
    OUTSIDE = "outside"

    @property
    def family(self) -> str:
        return self.value.rstrip("01") if self is not YellowArea.OUTSIDE else "outside"


@dataclass(frozen=True)
class DomainPartition:
    """Classifier for the grid ``G`` at population size ``n``.

    Parameters
    ----------
    n:
        Population size — enters through the ``1/log n`` thresholds and
        ``λ_n = 1/(log n)^{1/2+δ}`` (natural log, per DESIGN.md §5).
    delta:
        The δ of Section 2.1.
    """

    n: int
    delta: float = DEFAULT_DELTA

    def __post_init__(self) -> None:
        if self.n < 3:
            raise ValueError(f"n must be >= 3 for log-based thresholds, got {self.n}")
        if not 0.0 < self.delta < 0.5:
            raise ValueError(f"delta must be in (0, 1/2), got {self.delta}")

    # ------------------------------------------------------------ thresholds

    @property
    def inv_log_n(self) -> float:
        return 1.0 / math.log(self.n)

    @property
    def lambda_n(self) -> float:
        return 1.0 / math.log(self.n) ** (0.5 + self.delta)

    # -------------------------------------------------------- side-1 tests

    def _green1(self, x: float, y: float) -> bool:
        return y >= x + self.delta

    def _purple1(self, x: float, y: float) -> bool:
        d = self.delta
        return (
            self.inv_log_n <= x < 0.5 - 3 * d
            and (1.0 - self.lambda_n) * x <= y < x + d
        )

    def _red1(self, x: float, y: float) -> bool:
        d = self.delta
        return (
            self.inv_log_n <= y
            and x < 0.5 - 3 * d
            and x - d <= y < (1.0 - self.lambda_n) * x
        )

    def _cyan1(self, x: float, y: float) -> bool:
        d = self.delta
        return min(x, y) < self.inv_log_n and x - d < y < x + d

    def _yellow(self, x: float, y: float) -> bool:
        # Typo fix: the paper's "1/2 − 3δ ≤ x_t < 1/2 ≤ 3δ" is read as
        # 1/2 − 3δ ≤ x_t ≤ 1/2 + 3δ (see DESIGN.md §5).
        d = self.delta
        return (
            0.5 - 3 * d <= x <= 0.5 + 3 * d
            and 0.5 - 4 * d <= y <= 0.5 + 4 * d
            and abs(y - x) < d
        )

    # ---------------------------------------------------------- classifiers

    def classify(self, x: float, y: float) -> Domain:
        """Classify the pair ``(x_t, x_{t+1}) = (x, y)``.

        Side-0 domains are the point reflections of the side-1 domains around
        ``(1/2, 1/2)``. Precedence (Green, Yellow, Cyan, Red, Purple, with
        side 1 before side 0 within a family) resolves boundary overlaps
        deterministically.
        """
        if not (0.0 <= x <= 1.0 and 0.0 <= y <= 1.0):
            raise ValueError(f"point must lie in the unit square, got ({x}, {y})")
        rx, ry = 1.0 - x, 1.0 - y
        if self._green1(x, y):
            return Domain.GREEN1
        if self._green1(rx, ry):
            return Domain.GREEN0
        if self._yellow(x, y):
            return Domain.YELLOW
        if self._cyan1(x, y):
            return Domain.CYAN1
        if self._cyan1(rx, ry):
            return Domain.CYAN0
        if self._red1(x, y):
            return Domain.RED1
        if self._red1(rx, ry):
            return Domain.RED0
        if self._purple1(x, y):
            return Domain.PURPLE1
        if self._purple1(rx, ry):
            return Domain.PURPLE0
        return Domain.NONE

    def classify_pairs(self, pairs: np.ndarray) -> list[Domain]:
        """Classify an ``(m, 2)`` array of consecutive-fraction pairs."""
        return [self.classify(float(x), float(y)) for x, y in np.asarray(pairs, dtype=float)]

    # -------------------------------------------------- Yellow′ (Section 3)

    @property
    def yellow_prime_lo(self) -> float:
        return 0.5 - 4 * self.delta

    @property
    def yellow_prime_hi(self) -> float:
        return 0.5 + 4 * self.delta

    def in_yellow_prime(self, x: float, y: float) -> bool:
        """Membership in the bounding square ``Yellow′`` of Lemma 6."""
        lo, hi = self.yellow_prime_lo, self.yellow_prime_hi
        return lo <= x <= hi and lo <= y <= hi

    def classify_yellow_area(self, x: float, y: float) -> YellowArea:
        """Classify a point of ``Yellow′`` into A/B/C (Figure 2).

        * ``A1``: ``y ≥ 1/2`` and ``y − x ≥ x − 1/2`` — speed builds up.
        * ``B1``: ``y ≥ x`` and ``y − x < x − 1/2`` — slow upward climb.
        * ``C1``: ``y < 1/2`` and ``y ≥ x`` — pushed toward A.

        Side-0 variants by point reflection; precedence A1, B1, C1, A0, B0,
        C0 resolves shared boundaries.
        """
        if not self.in_yellow_prime(x, y):
            return YellowArea.OUTSIDE
        rx, ry = 1.0 - x, 1.0 - y
        if y >= 0.5 and y - x >= x - 0.5:
            return YellowArea.A1
        if y >= x and y - x < x - 0.5:
            return YellowArea.B1
        if y < 0.5 and y >= x:
            return YellowArea.C1
        if ry >= 0.5 and ry - rx >= rx - 0.5:
            return YellowArea.A0
        if ry >= rx and ry - rx < rx - 0.5:
            return YellowArea.B0
        if ry < 0.5 and ry >= rx:
            return YellowArea.C0
        # Coverage is exhaustive (see tests); this line is unreachable but
        # keeps the function total for defensive callers.
        return YellowArea.OUTSIDE  # pragma: no cover

    # ------------------------------------------------------------- utility

    def speed(self, x: float, y: float) -> float:
        """The paper's "speed" of a point: ``|x_{t+1} − x_t|``."""
        return abs(y - x)

    def grid_labels(self, resolution: int = 101) -> tuple[np.ndarray, np.ndarray, list[list[Domain]]]:
        """Classify a regular grid; returns (xs, ys, labels[y][x]).

        ``labels[i][j]`` classifies the point ``(xs[j], ys[i])`` — rows are
        ``x_{t+1}`` values, matching the axes of Figure 1a.
        """
        xs = np.linspace(0.0, 1.0, resolution)
        ys = np.linspace(0.0, 1.0, resolution)
        labels = [[self.classify(float(x), float(y)) for x in xs] for y in ys]
        return xs, ys, labels
