"""Exact binomial "coin competition" probabilities and the paper's bounds.

The entire analysis of FET reduces to comparing two binomial counts: an agent
adopts opinion 1 when ``B_ℓ(x_{t+1}) > B_ℓ(x_t)`` (Observation 1). Appendix A
of the paper develops four bounds on such competitions (Lemmas 12–15). This
module computes the *exact* probabilities by pmf convolution and implements
each bound, so tests and the E-coins benchmark can verify every lemma
numerically.

Notation: ``B_k(p)`` is a Binomial(k, p) variable; the two coins are tossed
``k`` times each, independently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.stats import binom, norm

__all__ = [
    "CoinComparison",
    "binomial_pmf",
    "compare_binomials",
    "compare_grid",
    "hoeffding_favorite_bound",
    "berry_esseen_underdog_bound",
    "lemma12_upper_bound",
    "lemma14_lower_bound",
    "expected_abs_difference_bound",
    "LEMMA12_ALPHA",
    "BERRY_ESSEEN_C",
]

#: Berry–Esseen constant used by the paper (Theorem 5).
BERRY_ESSEEN_C = 0.4748

#: The explicit constant from Claim 9's proof: any upper bound on
#: ``1/(q(1-p))`` over ``p, q ∈ [1/3, 2/3]``; the proof picks 9.
LEMMA12_ALPHA = 9.0


@dataclass(frozen=True)
class CoinComparison:
    """Exact outcome probabilities of one k-toss competition.

    ``p_first_wins`` is ``P(B_k(p) > B_k(q))``; ``p_tie`` is
    ``P(B_k(p) = B_k(q))``; ``p_second_wins`` the remainder.
    """

    p_first_wins: float
    p_tie: float
    p_second_wins: float

    @property
    def total(self) -> float:
        return self.p_first_wins + self.p_tie + self.p_second_wins


def binomial_pmf(k: int, p: float | np.ndarray) -> np.ndarray:
    """Probability mass function of Binomial(k, p) on ``{0, …, k}``.

    Scalar ``p`` gives shape ``(k+1,)``; an array of ``m`` values gives shape
    ``(m, k+1)``.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    support = np.arange(k + 1)
    p_arr = np.asarray(p, dtype=float)
    if (p_arr < 0).any() or (p_arr > 1).any():
        raise ValueError("p must lie in [0, 1]")
    # scipy's ibeta machinery overflows on p within a few hundred orders of
    # magnitude of the double-precision floor; such values are 0 for every
    # purpose here (pmf(0) = 1 - k·p + O(p²) ≈ 1 already at p = 1e-250).
    p_arr = np.where(np.abs(p_arr) < 1e-250, 0.0, p_arr)
    p_arr = np.where(np.abs(1.0 - p_arr) < 1e-250, 1.0, p_arr)
    if p_arr.ndim == 0:
        return binom.pmf(support, k, float(p_arr))
    return binom.pmf(support[None, :], k, p_arr[:, None])


def compare_binomials(k: int, p: float, q: float) -> CoinComparison:
    """Exact ``P(B_k(p) > / = / < B_k(q))`` via pmf convolution."""
    pmf_p = binomial_pmf(k, p)
    pmf_q = binomial_pmf(k, q)
    cdf_q = np.cumsum(pmf_q)
    # P(X > Y) = sum_i pmf_p[i] * P(Y < i) = sum_i pmf_p[i] * cdf_q[i-1].
    strict_below = np.concatenate(([0.0], cdf_q[:-1]))
    p_gt = float(pmf_p @ strict_below)
    p_eq = float(pmf_p @ pmf_q)
    p_lt = max(0.0, 1.0 - p_gt - p_eq)
    return CoinComparison(p_first_wins=p_gt, p_tie=p_eq, p_second_wins=p_lt)


def compare_grid(k: int, ps: np.ndarray, qs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized competition over a grid.

    Returns ``(GT, EQ)`` where ``GT[i, j] = P(B_k(ps[i]) > B_k(qs[j]))`` and
    ``EQ[i, j] = P(B_k(ps[i]) = B_k(qs[j]))``. Used to evaluate the drift
    function over the whole grid ``G`` in one shot.
    """
    ps = np.asarray(ps, dtype=float)
    qs = np.asarray(qs, dtype=float)
    pmf_p = binomial_pmf(k, ps)  # (len(ps), k+1)
    pmf_q = binomial_pmf(k, qs)  # (len(qs), k+1)
    cdf_q = np.cumsum(pmf_q, axis=1)
    strict_below = np.concatenate(
        [np.zeros((len(qs), 1)), cdf_q[:, :-1]], axis=1
    )
    gt = pmf_p @ strict_below.T
    eq = pmf_p @ pmf_q.T
    return gt, eq


# --------------------------------------------------------------------------
# The paper's bounds (Appendix A.2), each implemented exactly as stated.
# --------------------------------------------------------------------------


def hoeffding_favorite_bound(k: int, p: float, q: float) -> float:
    """Lemma 13: lower bound on ``P(B_k(p) < B_k(q))`` for ``p < q``.

    ``P(B_k(p) < B_k(q)) ≥ 1 − exp(−k(q−p)²/2)``.
    """
    if not p < q:
        raise ValueError(f"Lemma 13 requires p < q, got p={p}, q={q}")
    return 1.0 - math.exp(-0.5 * k * (q - p) ** 2)


def berry_esseen_underdog_bound(k: int, p: float, q: float) -> float:
    """Lemma 15: lower bound on ``P(B_k(p) > B_k(q))`` (underdog wins).

    ``P ≥ 1 − Φ(√k(q−p)/σ) − C/(σ√k)`` with ``σ² = p(1−p) + q(1−q)``.
    The bound can be vacuous (negative) when σ is tiny; callers clamp.
    """
    if not p < q:
        raise ValueError(f"Lemma 15 requires p < q, got p={p}, q={q}")
    sigma = math.sqrt(p * (1 - p) + q * (1 - q))
    if sigma == 0.0:
        return 0.0
    z = math.sqrt(k) * (q - p) / sigma
    return 1.0 - float(norm.cdf(z)) - BERRY_ESSEEN_C / (sigma * math.sqrt(k))


def lemma12_upper_bound(k: int, p: float, q: float, alpha: float = LEMMA12_ALPHA) -> float:
    """Lemma 12: upper bound on ``P(B_k(p) < B_k(q))`` for close coins.

    ``P < 1/2 + α(q−p)√k − P(B_k(p)=B_k(q))/2`` for ``p, q ∈ [1/3, 2/3]``,
    ``p < q``, ``q − p ≤ 1/√k``. Returns the bound's value; the caller
    compares against the exact probability.
    """
    if not (1 / 3 <= p < q <= 2 / 3):
        raise ValueError(f"Lemma 12 requires 1/3 <= p < q <= 2/3, got p={p}, q={q}")
    if q - p > 1 / math.sqrt(k) + 1e-12:  # tolerance: gaps built as p + 1/sqrt(k)
        raise ValueError(f"Lemma 12 requires q - p <= 1/sqrt(k), got gap {q - p}")
    tie = compare_binomials(k, p, q).p_tie
    return 0.5 + alpha * (q - p) * math.sqrt(k) - 0.5 * tie


def lemma14_lower_bound(k: int, p: float, q: float, lam: float) -> float:
    """Lemma 14's asserted lower bound value on ``P(B_k(p) < B_k(q))``.

    ``1/2 + λ(q−p) − P(B_k(p)=B_k(q))/2``. The lemma guarantees the exact
    probability exceeds this for ``p, q`` close enough to 1/2 and ``k`` large
    enough (as a function of λ); the E-coins benchmark maps where it holds.
    """
    if not p < q:
        raise ValueError(f"Lemma 14 requires p < q, got p={p}, q={q}")
    tie = compare_binomials(k, p, q).p_tie
    return 0.5 + lam * (q - p) - 0.5 * tie


def expected_abs_difference_bound(k: int, p: float, q: float) -> float:
    """Claim 10: ``E|B_k(p) − B_k(q)| ≤ √(2k·q(1−q)) + k(q−p)`` for p < q."""
    if not p < q:
        raise ValueError(f"Claim 10 requires p < q, got p={p}, q={q}")
    return math.sqrt(2 * k * q * (1 - q)) + k * (q - p)


def exact_expected_abs_difference(k: int, p: float, q: float) -> float:
    """Exact ``E|B_k(p) − B_k(q)|`` by convolving the two pmfs."""
    pmf_p = binomial_pmf(k, p)
    pmf_q = binomial_pmf(k, q)
    diff = np.arange(k + 1)[:, None] - np.arange(k + 1)[None, :]
    joint = pmf_p[:, None] * pmf_q[None, :]
    return float((np.abs(diff) * joint).sum())
