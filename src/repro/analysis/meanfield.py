"""Deterministic mean-field skeleton of the FET pair dynamics.

Iterating the pair map ``(x, y) ↦ (y, g(x, y))`` (with ``g`` from Eq. (7))
gives the noise-free skeleton of the Markov chain — the "expected orbit"
through the Figure 1a territory. This module traces such orbits, classifies
where they end up, and computes the basin structure over a grid of starting
pairs.

Two caveats the stochastic analysis makes precise:

* the skeleton is *repelled* from the absorbing edge: off exactly ``(1, 1)``
  the mean-field decays multiplicatively toward the interior, whereas the
  discrete chain pins to unanimity. Orbits are therefore classified by the
  first time they *touch* the consensus band, not by their limit;
* the zero-speed centre ``(1/2, 1/2)`` is *not* a fixed point: the source's
  ``O(1/n)`` term in Eq. (7) seeds a tiny upward speed that the Claim-3
  amplification compounds geometrically, so even the noise-free skeleton
  escapes the centre (in ~12 steps at ℓ = 60, n = 10⁵). The stochastic
  chain escapes faster still, riding ``1/√n`` sampling noise (Section 3);
  the gap between the two is exactly what the Yellow analysis prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from .drift import drift_g

__all__ = ["OrbitFate", "MeanFieldOrbit", "trace_orbit", "basin_grid"]


class OrbitFate(Enum):
    """Where a mean-field orbit ends up."""

    CORRECT = "correct"  # touched the correct-consensus band (y >= 1 - tol)
    WRONG = "wrong"  # touched the wrong-consensus band first (y <= tol)
    STALLED = "stalled"  # never left a small ball within the step budget


@dataclass(frozen=True)
class MeanFieldOrbit:
    """A traced orbit: visited pairs, fate, and the step of first contact."""

    points: np.ndarray  # (steps+1, 2) array of (x_t, x_{t+1}) pairs
    fate: OrbitFate
    hit_step: int | None

    @property
    def length(self) -> int:
        return int(self.points.shape[0])


def trace_orbit(
    x0: float,
    x1: float,
    ell: int,
    n: int,
    *,
    max_steps: int = 200,
    tol: float = 1e-3,
) -> MeanFieldOrbit:
    """Iterate the pair map from ``(x0, x1)`` until consensus contact.

    ``tol`` defines the consensus bands: the orbit is classified CORRECT as
    soon as ``y ≥ 1 − tol`` and WRONG as soon as ``y ≤ tol`` (the wrong band
    uses the non-source floor ``1/n`` implicitly: the mean-field map already
    carries the source term of Eq. (7)). STALLED means neither band was
    touched within ``max_steps``.
    """
    if max_steps < 1:
        raise ValueError(f"max_steps must be >= 1, got {max_steps}")
    x, y = float(x0), float(x1)
    points = [(x, y)]
    for step in range(1, max_steps + 1):
        x, y = y, drift_g(x, y, ell, n)
        points.append((x, y))
        if y >= 1.0 - tol:
            return MeanFieldOrbit(np.asarray(points), OrbitFate.CORRECT, step)
        if y <= tol:
            return MeanFieldOrbit(np.asarray(points), OrbitFate.WRONG, step)
    return MeanFieldOrbit(np.asarray(points), OrbitFate.STALLED, None)


def basin_grid(
    ell: int,
    n: int,
    *,
    resolution: int = 21,
    max_steps: int = 200,
    tol: float = 1e-3,
) -> tuple[np.ndarray, list[list[OrbitFate]]]:
    """Fate of the skeleton from every pair on a regular grid.

    Returns ``(grid, fates)`` with ``fates[i][j]`` the fate from
    ``(grid[j], grid[i])`` (rows index ``x_{t+1}``, as in Figure 1a).

    The expected structure: WRONG above nothing — the wrong band is merely a
    waypoint (the real chain bounces via Cyan, the skeleton's wrong-contact
    is recorded as WRONG because the bounce happens *after* contact); the
    upper-left half (upward trends) flows CORRECT; the exact diagonal centre
    stalls.
    """
    grid = np.linspace(0.0, 1.0, resolution)
    fates = [
        [
            trace_orbit(float(x), float(y), ell, n, max_steps=max_steps, tol=tol).fate
            for x in grid
        ]
        for y in grid
    ]
    return grid, fates
