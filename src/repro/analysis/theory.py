"""The paper's quantitative predictions, as callable bounds.

Every lemma in the proof of Theorem 1 bounds how long the chain can dwell in
a domain. These functions expose those bounds so benchmarks can print
"paper-predicted vs. measured" side by side. Bounds are asymptotic
(``O(·)``/w.h.p.), so each takes an explicit constant; the *shape* in ``n``
is the reproducible content.

All logarithms are natural (DESIGN.md §5).
"""

from __future__ import annotations

import math

__all__ = [
    "theorem1_bound",
    "yellow_dwell_bound",
    "red_dwell_bound",
    "cyan_dwell_bound",
    "green_dwell_bound",
    "purple_dwell_bound",
    "cyan_growth_constant",
    "cyan_gamma",
    "yellow_b_dwell_bound",
    "amplification_lower_bound",
]


def _check_n(n: int) -> None:
    if n < 3:
        raise ValueError(f"bounds need n >= 3, got {n}")


def theorem1_bound(n: int, constant: float = 1.0) -> float:
    """Theorem 1: total convergence time is ``O(log^{5/2} n)`` w.h.p."""
    _check_n(n)
    return constant * math.log(n) ** 2.5


def yellow_dwell_bound(n: int, constant: float = 1.0) -> float:
    """Lemma 5: consecutive rounds spent in Yellow are ``O(log^{5/2} n)``."""
    return theorem1_bound(n, constant)


def red_dwell_bound(n: int, delta: float = 0.05) -> float:
    """Lemma 3: at most ``log^{1/2+2δ} n`` consecutive rounds in Red."""
    _check_n(n)
    return math.log(n) ** (0.5 + 2 * delta)


def cyan_dwell_bound(n: int) -> float:
    """Lemma 4: at most ``log n / log log n`` consecutive rounds in Cyan.

    Needs ``log log n > 0``, i.e. ``n > e``; callers use n ≥ 16.
    """
    _check_n(n)
    loglog = math.log(math.log(n))
    if loglog <= 0:
        raise ValueError(f"cyan bound needs log log n > 0, got n={n}")
    return math.log(n) / loglog


def green_dwell_bound(n: int) -> float:
    """Lemma 1: from Green the non-sources reach consensus in one round."""
    _check_n(n)
    return 1.0


def purple_dwell_bound(n: int) -> float:
    """Lemma 2: from Purple the chain enters Green in one round w.h.p."""
    _check_n(n)
    return 1.0


def yellow_b_dwell_bound(n: int, c: float, c4: float) -> float:
    """Lemma 10: consecutive rounds in area B are at most ``(√c/c₄)·log^{3/2} n``."""
    _check_n(n)
    if c <= 0 or c4 <= 0:
        raise ValueError("c and c4 must be positive")
    return (math.sqrt(c) / c4) * math.log(n) ** 1.5


def cyan_growth_constant(c: float) -> float:
    """Section 4's ``K(c) = c·e^{−2c}/2``: per-round growth is ``K·log n``."""
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")
    return c * math.exp(-2 * c) / 2


def cyan_gamma(c: float) -> float:
    """Section 4's ``γ(c) = (1 − 1/e)·e^{−2c}/2`` threshold."""
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")
    return (1 - 1 / math.e) * math.exp(-2 * c) / 2


def amplification_lower_bound(ell: int, alpha: float = 9.0) -> float:
    """Eq. (9): ``f(x) − 1/2 > (1 + c₄/√ℓ)(x − 1/2)`` with ``c₄ = 1/(4α)``.

    Returns the factor ``1 + 1/(4α√ℓ)``.
    """
    if ell < 1:
        raise ValueError(f"ell must be >= 1, got {ell}")
    c4 = 1.0 / (4.0 * alpha)
    return 1.0 + c4 / math.sqrt(ell)
