"""Exact Markov chain of the FET pair process for small populations.

Observation 1 implies that conditioned on ``(x_t, x_{t+1})`` — equivalently
on the one-counts ``(i, j)`` — the next one-count ``k`` is distributed as

    k = 1 + Binomial(j − 1, p_keep) + Binomial(n − j, p_gain)

where (for a source with opinion 1, ``x = i/n``, ``y = j/n``)

    p_gain = P(B_ℓ(y) > B_ℓ(x))          (a 0-holder flips to 1)
    p_keep = P(B_ℓ(y) ≥ B_ℓ(x))          (a 1-holder stays at 1)

and the ``1 +`` accounts for the pinned source. The pair ``(i, j)`` therefore
forms a Markov chain on ``{1..n}²`` with unique absorbing state ``(n, n)``.
For small ``n`` we build the exact transition law and solve the linear system
for expected absorption times — the ground truth that validates the
simulation engine (benchmark E-markov) and Observation 1 itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .coins import compare_binomials

__all__ = ["ExactPairChain", "next_count_distribution"]


def _binom_pmf(m: int, p: float) -> np.ndarray:
    """pmf of Binomial(m, p) on {0..m}, numerically stable for small m."""
    from scipy.stats import binom

    return binom.pmf(np.arange(m + 1), m, p)


def next_count_distribution(n: int, i: int, j: int, ell: int) -> np.ndarray:
    """Distribution of the next one-count ``k`` given counts ``(i, j)``.

    Returns an ``(n+1,)`` vector over ``k ∈ {0..n}`` (entries below 1 are
    zero because the source is pinned at opinion 1).
    """
    if not (1 <= i <= n and 1 <= j <= n):
        raise ValueError(f"counts must lie in [1, n] with a pinned source, got ({i}, {j})")
    x = i / n
    y = j / n
    cmp_ = compare_binomials(ell, y, x)
    # Clamp away float accumulation (p_keep can exceed 1 by a few ulps,
    # which would poison the pmf with NaNs).
    p_gain = min(1.0, max(0.0, cmp_.p_first_wins))
    p_keep = min(1.0, max(0.0, cmp_.p_first_wins + cmp_.p_tie))
    ones_part = _binom_pmf(j - 1, p_keep)  # kept 1-holders among non-sources
    zeros_part = _binom_pmf(n - j, p_gain)  # converted 0-holders
    dist = np.convolve(ones_part, zeros_part)
    out = np.zeros(n + 1)
    out[1 : 1 + dist.size] = dist
    return out


@dataclass(frozen=True)
class ExactPairChain:
    """Exact chain on pairs ``(i, j) ∈ {1..n}²`` for FET with sample size ℓ.

    Builds the full transition structure lazily; states are indexed
    ``s = (i − 1)·n + (j − 1)``.
    """

    n: int
    ell: int

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"n must be >= 2, got {self.n}")
        if self.ell < 1:
            raise ValueError(f"ell must be >= 1, got {self.ell}")
        if self.n > 64:
            raise ValueError(
                f"exact chain is O(n^4); n={self.n} would be too large — use the simulator"
            )

    @property
    def num_states(self) -> int:
        return self.n * self.n

    def state_index(self, i: int, j: int) -> int:
        return (i - 1) * self.n + (j - 1)

    def state_of(self, s: int) -> tuple[int, int]:
        return s // self.n + 1, s % self.n + 1

    @property
    def absorbing_index(self) -> int:
        return self.state_index(self.n, self.n)

    @lru_cache(maxsize=None)
    def _next_dist(self, i: int, j: int) -> tuple[float, ...]:
        return tuple(next_count_distribution(self.n, i, j, self.ell))

    def transition_matrix(self) -> np.ndarray:
        """Dense ``(n², n²)`` row-stochastic matrix of the pair chain.

        From state ``(i, j)`` the chain moves to ``(j, k)`` with the
        probability that the next one-count is ``k``.
        """
        n = self.n
        size = self.num_states
        matrix = np.zeros((size, size))
        for i in range(1, n + 1):
            for j in range(1, n + 1):
                dist = np.asarray(self._next_dist(i, j))
                row = self.state_index(i, j)
                for k in range(1, n + 1):
                    p = dist[k]
                    if p > 0.0:
                        matrix[row, self.state_index(j, k)] = p
        return matrix

    def is_absorbing(self) -> bool:
        """Check that ``(n, n)`` is absorbing: all-ones stays all-ones."""
        dist = np.asarray(self._next_dist(self.n, self.n))
        return bool(np.isclose(dist[self.n], 1.0))

    def expected_absorption_times(self) -> np.ndarray:
        """Expected rounds to reach ``(n, n)`` from every state.

        Solves ``(I − Q)h = 1`` over the transient states. Requires the chain
        to be absorbing from everywhere (true for FET with a pinned source:
        the absorption probability is 1).
        """
        matrix = self.transition_matrix()
        absorbing = self.absorbing_index
        transient = [s for s in range(self.num_states) if s != absorbing]
        q = matrix[np.ix_(transient, transient)]
        identity = np.eye(len(transient))
        times = np.linalg.solve(identity - q, np.ones(len(transient)))
        out = np.zeros(self.num_states)
        for idx, s in enumerate(transient):
            out[s] = times[idx]
        return out

    def expected_time_from(self, i: int, j: int) -> float:
        """Expected absorption time from pair state ``(i, j)``."""
        return float(self.expected_absorption_times()[self.state_index(i, j)])

    def expected_time_from_all_wrong(self) -> float:
        """Expected absorption time from the all-wrong start ``(1, 1)``.

        (Only the source holds opinion 1 in both of the last two rounds.)
        """
        return self.expected_time_from(1, 1)
