"""One declarative run configuration for every execution layer.

A :class:`RunSpec` fully describes one experimental *condition* — the unit
every table in the paper reproduction is built from: a protocol component,
an initializer component, a sampler/observation component, the population
shape (``n``, ``num_sources``, ``correct_opinion``), the engine policy,
the stability/linger windows, the round budget, and the measurement. All
components are named ``{"name": ..., params}`` dicts resolved through the
registries in :mod:`repro.sweep.registry`, so a spec:

* round-trips through **canonical JSON** (:func:`canonical_json`) — it can
  live in a file, travel to a worker process, and be diffed;
* has a **content-hash key** (:meth:`RunSpec.key`) — the results-store
  identity, covering everything that determines the outcome;
* derives **seeds** deterministically (:func:`derive_seed`) — the same
  condition under the same base seed gets the same stream in every
  process, job count, and resumed run.

The layers consume it uniformly:

* :meth:`RunSpec.execute` runs the condition's batch of trials and returns
  :class:`~repro.experiments.harness.TrialStats` — the legacy
  :func:`~repro.experiments.harness.run_trials` factory-kwargs signature is
  now a thin adapter over this method;
* a sweep :class:`~repro.sweep.spec.Cell` *is* a ``RunSpec`` (plus its
  derived seed), so grids, the store, and the dispatcher all speak it;
* :meth:`RunSpec.batched_engine` hands trace/θ consumers a fully prepared
  :class:`~repro.core.batch.BatchedEngine`, so no caller outside the
  harness builds engines or pairs scalar/batched samplers by hand.

**Hash compatibility.** :meth:`spec_dict` emits the new fields
(``sampler``, ``num_sources``, ``correct_opinion``, ``linger_rounds``)
only when they differ from their defaults, so every condition expressible
before those fields existed keeps its exact content hash — and therefore
its derived seed, store key, and aggregate CSV bytes.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core.batch import BatchedEngine
    from .core.counts import CountEngine
    from .core.population import PopulationState
    from .core.protocol import Protocol
    from .core.sampling import BatchedSampler, Sampler
    from .experiments.harness import TrialStats
    from .initializers.standard import Initializer
    from .trace.recorder import TraceRecorder

__all__ = [
    "RUN_SCHEMA",
    "RunSpec",
    "canonical_json",
    "default_round_budget",
    "derive_seed",
]

#: Bumped when the run-spec schema changes incompatibly, so stale store
#: entries miss instead of deserializing into the wrong shape. (Additive,
#: default-elided fields do NOT bump it — see the hash-compatibility note.)
RUN_SCHEMA = 1


def canonical_json(obj: Any) -> str:
    """Serialize to the canonical form used for hashing (sorted keys, no
    whitespace) — byte-stable across processes and sessions."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def derive_seed(base_seed: int, spec_dict: dict) -> int:
    """Deterministic integer seed for one run configuration.

    The configuration's canonical JSON is hashed and the digest words are
    spawned through a :class:`numpy.random.SeedSequence` together with the
    base seed: distinct configurations (or distinct base seeds) give
    independent streams, while the same configuration under the same base
    seed gets the same seed in every process, job count, and resumed run.
    """
    digest = hashlib.sha256(canonical_json(spec_dict).encode()).digest()
    words = tuple(int.from_bytes(digest[i : i + 4], "big") for i in range(0, 16, 4))
    sequence = np.random.SeedSequence((int(base_seed), *words))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def default_round_budget(n: int) -> int:
    """The Theorem-1 poly-log round budget: ``max(200, 40·(ln n)^2.5)``.

    The one definition of the convention shared by every consumer — run
    specs with ``max_rounds=None``, the single-run drivers (``repro
    trace``, the sample-size ablation). ``SweepSpec`` keeps its own
    *parameterized* resolver (``max_rounds_factor``/``min_rounds``) because
    those knobs are part of every cell's seed-deriving content hash.
    """
    return max(200, int(40 * math.log(n) ** 2.5))


def _default_initializer() -> dict:
    return {"name": "all-wrong"}


def _default_measure() -> dict:
    return {"kind": "consensus"}


@dataclass(frozen=True)
class RunSpec:
    """One fully-described experimental condition (see module docstring).

    Parameters
    ----------
    protocol:
        ``{"name": ..., params}`` component (see the protocol registry), or
        ``None`` for adapter use where a live ``protocol_factory`` override
        is supplied to :meth:`execute` — a ``None`` protocol cannot be
        serialized or hashed.
    n:
        Population size (sources included).
    noise:
        Per-bit observation-flip probability ε. Sugar for the default noisy
        observation component: when ``sampler`` is ``None`` and ε > 0 the
        run observes through the paired
        :class:`~repro.core.noise.NoisyCountSampler` /
        :class:`~repro.core.noise.BatchedNoisyCountSampler`.
    initializer:
        ``{"name": ..., params}`` component (initializer registry).
    trials:
        Independent trials of the condition (0 degrades to an empty
        aggregate).
    max_rounds:
        Per-trial round budget; ``None`` applies the poly-log convention
        ``max(200, 40·(ln n)^2.5)`` at execution time (grids resolve their
        own parameterized rule per cell before hashing).
    stability_rounds:
        Consecutive all-correct rounds required for convergence.
    engine:
        ``"auto"`` (batched when the protocol and observation component
        support it), ``"batched"``, ``"sequential"``, or ``"counts"`` (the
        sufficient-statistic engine — explicit opt-in, never auto-selected;
        requires count-capable protocol/initializer/sampler components).
    measure:
        Measurement descriptor; kinds live in the sweep runner's registry.
    sampler:
        Observation component ``{"name": ..., params}`` (sampler registry),
        or ``None`` for the noise-derived default. Scalar and batched
        builders are *paired in the registry*, so declaring a sampler can
        never strand the batched engine without its matching observation
        model.
    num_sources:
        Number of agreeing source agents (the E-multi axis).
    correct_opinion:
        The bit the population must converge on.
    linger_rounds:
        Batched-engine settle window: converged replicas keep stepping this
        many rounds before retiring (trace consumers; ignored by the
        sequential engine, which steps on explicitly).
    population:
        Population-layout component ``{"name": ..., params}`` (population
        registry), or ``None`` for the standard source-pinned layout built
        from the shape fields. ``{"name": "standard"}`` is the same layout
        declared explicitly; ``{"name": "majority", "k0": ..., "k1": ...}``
        builds the Section-1.2 majority variant (crafted layouts force the
        per-trial population path and are rejected by the counts engine).
    seed:
        Base RNG seed of the condition. Sweep cells carry a derived seed.
    """

    protocol: dict | None
    n: int
    noise: float = 0.0
    initializer: dict = field(default_factory=_default_initializer)
    trials: int = 1
    max_rounds: int | None = None
    stability_rounds: int = 2
    engine: str = "auto"
    measure: dict = field(default_factory=_default_measure)
    sampler: dict | None = None
    num_sources: int = 1
    correct_opinion: int = 1
    linger_rounds: int = 0
    population: dict | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"population sizes must be >= 2, got {self.n}")
        if self.trials < 0:
            raise ValueError(f"trials must be >= 0, got {self.trials}")
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.stability_rounds < 1:
            raise ValueError(f"stability_rounds must be >= 1, got {self.stability_rounds}")
        if self.linger_rounds < 0:
            raise ValueError(f"linger_rounds must be >= 0, got {self.linger_rounds}")
        if self.engine not in ("auto", "batched", "sequential", "counts"):
            raise ValueError(
                f"engine must be 'auto', 'batched', 'sequential' or 'counts', "
                f"got {self.engine!r}"
            )
        if not 0.0 <= self.noise <= 0.5:
            raise ValueError(f"noise levels must be in [0, 1/2], got {self.noise}")
        if self.correct_opinion not in (0, 1):
            raise ValueError(f"correct_opinion must be 0 or 1, got {self.correct_opinion}")
        if not 1 <= self.num_sources < self.n:
            raise ValueError(
                f"num_sources must be in [1, n), got {self.num_sources} with n={self.n}"
            )

    # --------------------------------------------------------- serialization

    def spec_dict(self) -> dict:
        """The configuration without the seed — the seed-derivation and
        content-hash input.

        New fields are emitted only at non-default values so pre-existing
        conditions keep their exact hashes (see the module docstring).
        """
        if self.protocol is None:
            raise ValueError("a RunSpec with protocol=None cannot be serialized or hashed")
        out = {
            "protocol": self.protocol,
            "n": self.n,
            "noise": self.noise,
            "initializer": self.initializer,
            "trials": self.trials,
            "max_rounds": self.max_rounds,
            "stability_rounds": self.stability_rounds,
            "engine": self.engine,
            "measure": self.measure,
        }
        if self.sampler is not None:
            out["sampler"] = self.sampler
        if self.num_sources != 1:
            out["num_sources"] = self.num_sources
        if self.correct_opinion != 1:
            out["correct_opinion"] = self.correct_opinion
        if self.linger_rounds != 0:
            out["linger_rounds"] = self.linger_rounds
        if self.population is not None:
            out["population"] = self.population
        return out

    def to_dict(self) -> dict:
        out = self.spec_dict()
        out["seed"] = self.seed
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        return cls(**data)

    def to_json(self) -> str:
        """Canonical JSON of the full spec (seed included)."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    def key(self) -> str:
        """Content hash of the configuration + seed: the results-store key."""
        payload = {"schema": RUN_SCHEMA, **self.to_dict()}
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()

    def label(self) -> str:
        """Short human-readable tag for logs and errors."""
        parts = [self.protocol["name"] if self.protocol else "<factory>", f"n={self.n}"]
        if self.noise:
            parts.append(f"eps={self.noise}")
        if self.sampler is not None:
            parts.append(self.sampler["name"])
        if self.num_sources != 1:
            parts.append(f"sources={self.num_sources}")
        if self.population is not None:
            parts.append(f"pop={self.population['name']}")
        parts.append(self.initializer["name"])
        return " ".join(parts)

    # ------------------------------------------------------------ resolution
    #
    # Declarative components -> live objects. Registry imports are deferred:
    # the registries import the protocol/initializer packages, which import
    # core — making them module-level imports here would cycle through
    # repro.sweep at package-import time.

    def resolved_max_rounds(self) -> int:
        """The round budget, with ``None`` resolved by the poly-log rule."""
        if self.max_rounds is not None:
            return self.max_rounds
        return default_round_budget(self.n)

    def build_protocol(self) -> "Protocol":
        """Instantiate the declared protocol component for this ``n``."""
        from .sweep.registry import build_protocol

        if self.protocol is None:
            raise ValueError("this RunSpec declares no protocol component")
        return build_protocol(self.protocol, self.n)

    def protocol_factory(self) -> Callable[[], "Protocol"]:
        """Zero-argument factory building a fresh protocol per call."""
        from .sweep.registry import protocol_factory

        if self.protocol is None:
            raise ValueError("this RunSpec declares no protocol component")
        return protocol_factory(self.protocol, self.n)

    def build_initializer(self) -> "Initializer":
        """Instantiate the declared initializer component."""
        from .sweep.registry import build_initializer

        return build_initializer(self.initializer)

    def population_factory(self) -> Callable[[], "PopulationState"] | None:
        """Factory for the declared population layout, or ``None`` when the
        engines should build the standard layout natively from the shape
        fields (no component declared, or the explicit ``standard`` one —
        resolving ``standard`` to "no override" keeps the vectorized
        batch-initialization and counts fast paths available)."""
        if self.population is None:
            return None
        from .sweep.registry import population_factory

        return population_factory(
            self.population,
            self.n,
            num_sources=self.num_sources,
            correct_opinion=self.correct_opinion,
        )

    def samplers(self) -> tuple[Callable[[], "Sampler"] | None, "BatchedSampler | None"]:
        """The paired (scalar factory, batched) observation components.

        Resolution: an explicit ``sampler`` component wins; otherwise
        ``noise`` > 0 selects the noisy pair and ``noise`` = 0 the engine
        defaults (``None`` scalar factory means "engine default"). Pairing
        happens in the sampler registry, so a declared component can never
        reach the batched engine without its batched counterpart — a
        registry entry without one (e.g. the literal index sampler) returns
        ``None`` for the batched side, which :meth:`use_batched` treats as
        "sequential only".
        """
        from .sweep.registry import build_samplers

        if self.sampler is not None:
            return build_samplers(self.sampler)
        if self.noise > 0.0:
            return build_samplers({"name": "noisy", "epsilon": self.noise})
        from .core.sampling import BatchedBinomialSampler

        return None, BatchedBinomialSampler()

    def use_batched(self, protocol: "Protocol") -> bool:
        """Engine resolution for a live protocol instance.

        ``"counts"`` reports ``False`` here: the sufficient-statistic engine
        is neither per-agent path, and its consumers dispatch on
        ``engine == "counts"`` explicitly before asking this question.
        """
        if self.engine in ("sequential", "counts"):
            return False
        if self.engine == "batched":
            return True
        return protocol.batch_vectorized and self.samplers()[1] is not None

    # ------------------------------------------------------------- execution

    def execute(
        self,
        *,
        keep_results: bool = False,
        protocol_factory: Callable[[], "Protocol"] | None = None,
        initializer: "Initializer | None" = None,
        sampler_factory: Callable[[], "Sampler"] | None = None,
        batched_sampler: "BatchedSampler | None" = None,
        population_factory: Callable[[], "PopulationState"] | None = None,
    ) -> "TrialStats":
        """Run the condition's batch of trials and aggregate the outcomes.

        The keyword overrides exist for the legacy factory-kwargs adapters
        (:func:`~repro.experiments.harness.run_trials`) and for components
        with no declarative form (crafted populations, scripted samplers);
        each override replaces the corresponding declared component. All
        execution — engine choice, sampler pairing, per-trial vs. lock-step
        stepping — happens in the harness core behind this method.
        """
        from .experiments.harness import execute_run

        return execute_run(
            self,
            keep_results=keep_results,
            protocol_factory=protocol_factory,
            initializer=initializer,
            sampler_factory=sampler_factory,
            batched_sampler=batched_sampler,
            population_factory=population_factory,
        )

    def batched_engine(
        self,
        *,
        protocol: "Protocol | None" = None,
        initializer: "Initializer | None" = None,
    ) -> "BatchedEngine":
        """A fully prepared lock-step engine for this condition.

        Builds the initialized ``(R, n)`` batch (same spawned streams as
        :meth:`execute`'s batched path), resolves the batched observation
        component, and returns the engine ready for
        :meth:`~repro.core.batch.BatchedEngine.run` — the one entry point
        for trace/θ consumers, so they never assemble engines or pair
        samplers by hand. ``protocol``/``initializer`` accept pre-built
        instances to avoid rebuilding them around a registry validation.
        """
        from .experiments.harness import make_batched_engine

        return make_batched_engine(self, protocol=protocol, initializer=initializer)

    def count_engine(
        self,
        *,
        protocol: "Protocol | None" = None,
        initializer: "Initializer | None" = None,
    ) -> "CountEngine":
        """A fully prepared sufficient-statistic engine for this condition.

        The counts analogue of :meth:`batched_engine`: builds the initialized
        ``(R, S)`` state-count matrix, resolves the fraction-keyed observation
        component, and returns a :class:`~repro.core.counts.CountEngine`
        ready to ``run``. Raises when any declared component has no
        count-level form (per-agent initializers, the index sampler,
        protocols without a count model).
        """
        from .experiments.harness import make_count_engine

        return make_count_engine(self, protocol=protocol, initializer=initializer)
