"""Follow the Emerging Trend (FET) — Protocol 1 of the paper.

Each round ``t``, every agent draws ``2ℓ`` uniform-with-replacement samples,
partitions them uniformly at random into two blocks ``S′_t`` and ``S″_t`` of
size ℓ, and counts 1-opinions in each (``count′_t``, ``count″_t``). It then
compares this round's ``count′_t`` to the *previous* round's ``count″_{t-1}``:

* ``count′_t > count″_{t-1}`` → adopt opinion 1 (an upward trend is emerging);
* ``count′_t < count″_{t-1}`` → adopt opinion 0;
* tie → keep the current opinion.

The split into two blocks makes consecutive comparisons use disjoint sample
sets, removing the dependence between ``Y_t`` and ``Y_{t+1}`` that would make
the single-counter variant (see :mod:`repro.protocols.simple_trend`) harder to
analyze — the key modelling move of Section 1.3.

Sampling with replacement from a population with one-fraction ``x`` makes the
two block counts independent ``Binomial(ℓ, x)`` variables, so the vectorized
implementation below draws them directly (exact, not approximate).

Memory: the only carried variable is ``count″_{t-1} ∈ {0, …, ℓ}``, i.e.
``log2(ℓ+1)`` bits — the ``O(log ℓ)`` of Theorem 1.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.batch import BatchedPopulation
from ..core.population import PopulationState
from ..core.protocol import Protocol, ProtocolState
from ..core.sampling import BatchedSampler, Sampler
from .counting import (
    prev_count_display,
    prev_count_init_pmf,
    prev_count_random_pmf,
    two_block_trend_step_counts,
)

__all__ = ["FETProtocol", "ell_for", "DEFAULT_SAMPLE_CONSTANT"]

#: Default multiplier in ℓ = ceil(c · ln n). The paper requires c sufficiently
#: large; c = 8 keeps per-domain failure probabilities small for the n used in
#: the experiments while staying fast.
DEFAULT_SAMPLE_CONSTANT = 8.0


def ell_for(n: int, c: float = DEFAULT_SAMPLE_CONSTANT) -> int:
    """The paper's sample size ``ℓ = ⌈c·ln n⌉`` (at least 1)."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    return max(1, math.ceil(c * math.log(n)))


class FETProtocol(Protocol):
    """Vectorized FET (paper, Protocol 1).

    Parameters
    ----------
    ell:
        Block sample size ℓ. Each agent draws ``2ℓ`` samples per round.
    """

    passive = True
    batch_vectorized = True
    counts_supported = True

    def __init__(self, ell: int) -> None:
        if ell < 1:
            raise ValueError(f"ell must be >= 1, got {ell}")
        self.ell = ell
        self.name = f"fet(ell={ell})"

    # ---------------------------------------------------------------- state

    def init_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        """Clean start: as if the previous round's block was all zeros.

        The concrete value is irrelevant to correctness (the protocol is
        self-stabilizing); adversarial runs overwrite it anyway.
        """
        return {"prev_count": np.zeros(n, dtype=np.int64)}

    def randomize_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        """Adversarial state: arbitrary counters in ``{0, …, ℓ}``."""
        return {"prev_count": rng.integers(0, self.ell + 1, size=n, dtype=np.int64)}

    def init_state_batch(
        self, replicas: int, n: int, rng: np.random.Generator
    ) -> ProtocolState:
        return {"prev_count": np.zeros((replicas, n), dtype=np.int64)}

    def randomize_state_batch(
        self, replicas: int, n: int, rng: np.random.Generator
    ) -> ProtocolState:
        return {"prev_count": rng.integers(0, self.ell + 1, size=(replicas, n), dtype=np.int64)}

    # ----------------------------------------------------------------- step

    def step(
        self,
        population: PopulationState,
        state: ProtocolState,
        sampler: Sampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        blocks = sampler.count_blocks(population, self.ell, 2, rng)
        count_prime = blocks[0]
        count_dprime = blocks[1]
        prev = state["prev_count"]
        opinions = population.opinions
        new = np.where(
            count_prime > prev,
            np.uint8(1),
            np.where(count_prime < prev, np.uint8(0), opinions),
        ).astype(np.uint8)
        state["prev_count"] = count_dprime
        return new

    def step_batch(
        self,
        batch: BatchedPopulation,
        states: ProtocolState,
        sampler: BatchedSampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """All replicas at once: the scalar rule broadcast over ``(A, n)``.

        The three-way rule (greater → 1, smaller → 0, tie → keep) is fused
        into a single comparison: doubling both counters makes room to fold
        the current opinion bit into the left side, and
        ``2·count′ + opinion > 2·prev`` resolves to ``count′ > prev`` off a
        tie and to ``opinion`` on one. One comparison pass over scratch
        buffers (both count matrices are dead after this round) replaces
        the equality/greater/select triple — each of which read two full
        ``(A, n)`` operands — and the bool result reinterprets as ``uint8``
        for free.
        """
        blocks = sampler.count_blocks(batch, self.ell, 2, rng)
        count_prime = blocks[0]
        prev = states["prev_count"]
        if np.shares_memory(prev, blocks):
            # A buffer-reusing sampler handed back the tensor that still
            # backs last round's carried count: leave it untouched and
            # build the doubled operands out of place.
            lhs = count_prime + count_prime
            prev2 = prev + prev
        else:
            # count_blocks returns freshly-allocated counts (the
            # BatchedSampler contract), and the carried count dies this
            # round — both are scratch, so the doubling runs in place.
            lhs = np.add(count_prime, count_prime, out=count_prime)
            prev2 = np.add(prev, prev, out=prev)
        np.add(lhs, batch.opinions, out=lhs, casting="unsafe")
        new = lhs > prev2
        states["prev_count"] = blocks[1]
        return new.view(np.uint8)

    # ---------------------------------------------------------- count model
    #
    # State ``s = opinion·(ℓ+1) + prev_count``. The carried counter is an
    # independent second sample block, so the count transition factorizes
    # (see ``two_block_trend_step_counts``); FET is the band-0 case.

    def count_states(self) -> int:
        return 2 * (self.ell + 1)

    def count_display(self) -> np.ndarray:
        return prev_count_display(self.ell)

    def count_init_state_pmf(self) -> np.ndarray:
        return prev_count_init_pmf(self.ell)

    def count_random_state_pmf(self) -> np.ndarray:
        return prev_count_random_pmf(self.ell)

    def step_counts(
        self, counts: np.ndarray, x_eff: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return two_block_trend_step_counts(counts, x_eff, rng, self.ell, 0)

    # ----------------------------------------------------------- accounting

    def samples_per_round(self) -> int:
        return 2 * self.ell

    def memory_bits(self) -> float:
        return math.log2(self.ell + 1)
