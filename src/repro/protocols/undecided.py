"""Undecided-State Dynamics (USD) baseline.

Angluin, Aspnes & Eisenstat 2008 (cited in Section 1.4): each agent is either
*decided* on an opinion or *undecided*. On meeting a decided agent with the
opposite opinion, a decided agent becomes undecided; an undecided agent adopts
the first decided opinion it sees.

Passive-communication adaptation: an undecided agent still has to display a
binary opinion (it cannot display "undecided"), so it keeps showing its last
decided opinion while internally undecided — this is the natural embedding of
USD into the paper's passive model, and it is why the internal ``undecided``
flag counts toward the protocol's memory.

Like the other consensus dynamics, USD converges to the initial
majority/plurality, not to the source's opinion, so it fails the
self-stabilizing dissemination task from adversarial starts.
"""

from __future__ import annotations

import numpy as np

from ..core.batch import BatchedPopulation
from ..core.population import PopulationState
from ..core.protocol import Protocol, ProtocolState
from ..core.sampling import BatchedSampler, Sampler

__all__ = ["UndecidedStateProtocol"]


class UndecidedStateProtocol(Protocol):
    """One-sample undecided-state dynamics under passive communication."""

    passive = True
    batch_vectorized = True
    counts_supported = True
    name = "undecided-state"

    def init_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {"undecided": np.zeros(n, dtype=bool)}

    def randomize_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {"undecided": rng.integers(0, 2, size=n).astype(bool)}

    def init_state_batch(
        self, replicas: int, n: int, rng: np.random.Generator
    ) -> ProtocolState:
        return {"undecided": np.zeros((replicas, n), dtype=bool)}

    def randomize_state_batch(
        self, replicas: int, n: int, rng: np.random.Generator
    ) -> ProtocolState:
        return {"undecided": rng.integers(0, 2, size=(replicas, n)).astype(bool)}

    def step(
        self,
        population: PopulationState,
        state: ProtocolState,
        sampler: Sampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        seen = (sampler.counts(population, 1, rng) > 0).astype(np.uint8)
        opinions = population.opinions
        undecided = state["undecided"]

        disagree = seen != opinions
        # Decided agents seeing disagreement become undecided (opinion shown
        # is unchanged). Undecided agents adopt whatever they see and become
        # decided. Note every observation is a decided *display* under passive
        # communication, so an undecided observer always adopts.
        new_undecided = np.where(undecided, False, disagree)
        new_opinions = np.where(undecided, seen, opinions).astype(np.uint8)

        state["undecided"] = new_undecided
        return new_opinions

    def step_batch(
        self,
        batch: BatchedPopulation,
        states: ProtocolState,
        sampler: BatchedSampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        seen = (sampler.counts(batch, 1, rng) > 0).astype(np.uint8)
        opinions = batch.opinions
        undecided = states["undecided"]
        disagree = seen != opinions
        states["undecided"] = np.where(undecided, False, disagree)
        return np.where(undecided, seen, opinions).astype(np.uint8)

    # ---------------------------------------------------------- count model
    #
    # State ``s = 2·opinion + undecided`` (S = 4). Each agent's transition
    # depends only on its state and the one observed bit (Bernoulli(x̃)), so
    # the full dense 4×4 kernel is cheap: one multinomial split per state.

    def count_states(self) -> int:
        return 4

    def count_display(self) -> np.ndarray:
        return np.array([0, 0, 1, 1], dtype=np.uint8)

    def count_init_state_pmf(self) -> np.ndarray:
        pmf = np.zeros((2, 4))
        pmf[0, 0] = 1.0
        pmf[1, 2] = 1.0
        return pmf

    def count_random_state_pmf(self) -> np.ndarray:
        pmf = np.zeros((2, 4))
        pmf[0, 0] = pmf[0, 1] = 0.5
        pmf[1, 2] = pmf[1, 3] = 0.5
        return pmf

    def step_counts(
        self, counts: np.ndarray, x_eff: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        replicas = counts.shape[0]
        x = np.asarray(x_eff, dtype=float)
        kernel = np.zeros((replicas, 4, 4))
        # Decided 0 (s=0): sees 1 w.p. x̃ -> undecided (s=1), else stays.
        kernel[:, 0, 0] = 1.0 - x
        kernel[:, 0, 1] = x
        # Undecided showing 0 (s=1): adopts what it sees and decides.
        kernel[:, 1, 0] = 1.0 - x
        kernel[:, 1, 2] = x
        # Decided 1 (s=2): sees 0 w.p. 1-x̃ -> undecided (s=3), else stays.
        kernel[:, 2, 2] = x
        kernel[:, 2, 3] = 1.0 - x
        # Undecided showing 1 (s=3): adopts what it sees and decides.
        kernel[:, 3, 0] = 1.0 - x
        kernel[:, 3, 2] = x
        moved = rng.multinomial(counts, kernel)
        return moved.sum(axis=1).astype(np.int64)

    def samples_per_round(self) -> int:
        return 1

    def memory_bits(self) -> float:
        return 1.0
