"""Shared count-model building blocks for the sufficient-statistic engine.

The counts engine (:mod:`repro.core.counts`) steps ``(A, S)`` state-count
matrices through :meth:`~repro.core.protocol.Protocol.step_counts`. The
protocols in this package fall into two families, and this module holds the
machinery both reuse:

* **prev-count protocols** (FET, hysteresis-FET, simple-trend): per-agent
  state is ``(opinion, prev_count)`` with ``prev_count ∈ {0..ℓ}``, so
  ``S = 2(ℓ+1)`` and state ``s = opinion·(ℓ+1) + prev_count``;
* **opinion-only protocols** (voter, k-majority, sample-majority): the
  opinion bit is the whole state, ``S = 2``.

All transitions are *exact in distribution*: within a replica every agent's
observation count is an independent ``Binomial(ℓ, x̃)`` draw
(:func:`~repro.core.sampling._binomial_pmf_rows` supplies the row-wise
pmfs), so per-state transition counts are binomial/multinomial splits of
the state counts — O(S) work per replica, independent of ``n``.
"""

from __future__ import annotations

import numpy as np

from ..core.sampling import _binomial_pmf_rows

__all__ = [
    "OPINION_DISPLAY",
    "OPINION_STATE_PMF",
    "prev_count_display",
    "prev_count_init_pmf",
    "prev_count_random_pmf",
    "two_block_trend_step_counts",
    "scatter_counts",
]

#: Opinion-only protocols: state ``s`` *is* the opinion bit.
OPINION_DISPLAY = np.array([0, 1], dtype=np.uint8)
#: Both the clean and the adversarial state distribution of an opinion-only
#: protocol are the point mass on the opinion itself.
OPINION_STATE_PMF = np.eye(2, dtype=float)


def prev_count_display(ell: int) -> np.ndarray:
    """``(2(ℓ+1),)`` displayed opinions for ``s = o·(ℓ+1) + prev``."""
    return np.repeat(np.array([0, 1], dtype=np.uint8), ell + 1)


def prev_count_init_pmf(ell: int) -> np.ndarray:
    """Clean start of a prev-count protocol: ``prev_count = 0`` given o."""
    pmf = np.zeros((2, 2 * (ell + 1)))
    pmf[0, 0] = 1.0
    pmf[1, ell + 1] = 1.0
    return pmf


def prev_count_random_pmf(ell: int) -> np.ndarray:
    """Adversarial state of a prev-count protocol: ``prev_count`` uniform on
    ``{0..ℓ}`` given o (matches ``randomize_state``'s uniform counters)."""
    pmf = np.zeros((2, 2 * (ell + 1)))
    pmf[0, : ell + 1] = 1.0 / (ell + 1)
    pmf[1, ell + 1 :] = 1.0 / (ell + 1)
    return pmf


def two_block_trend_step_counts(
    counts: np.ndarray,
    x_eff: np.ndarray,
    rng: np.random.Generator,
    ell: int,
    band: int,
) -> np.ndarray:
    """One count-level round of the two-block trend rule (FET; hysteresis
    for ``band > 0``).

    Per agent in state ``(o, prev)``: draw ``count′ ~ Binomial(ℓ, x̃)``,
    adopt 1 when ``count′ > prev + band``, adopt 0 when
    ``count′ < prev − band``, keep ``o`` otherwise; the carried counter
    becomes an *independent* second block ``count″ ~ Binomial(ℓ, x̃)``.

    Because the new counter is independent of the adoption decision, the
    transition factorizes into two stages — a per-state binomial split into
    the new opinion classes, then one multinomial draw of counter values per
    opinion class — costing O(A·ℓ) instead of the O(A·S²) of a dense kernel.
    """
    width = ell + 1
    pmf = _binomial_pmf_rows(ell, x_eff)
    cdf = np.cumsum(pmf, axis=1)
    prev = np.arange(width)
    # P(count′ > prev + band): 1 - cdf at the threshold, exact at the clamp
    # (cdf[:, ℓ] == 1 makes out-of-range thresholds contribute 0).
    p_up = 1.0 - cdf[:, np.minimum(prev + band, ell)]
    # P(count′ < prev - band): cdf at prev - band - 1, zero when the
    # threshold sits at or below 0.
    lo = prev - band
    p_down = np.where(lo >= 1, cdf[:, np.clip(lo - 1, 0, ell)], 0.0)
    # P(new opinion = 1 | state): adopt-1 mass, plus the keep mass iff o = 1.
    p_one = np.concatenate([p_up, 1.0 - p_down], axis=1)
    np.clip(p_one, 0.0, 1.0, out=p_one)

    to_one = rng.binomial(counts, p_one)
    m_one = to_one.sum(axis=1)
    m_zero = counts.sum(axis=1) - m_one
    # Fresh counters are iid Binomial(ℓ, x̃) regardless of the new opinion,
    # so each opinion class's counter histogram is one multinomial split.
    new_zero = rng.multinomial(m_zero, pmf)
    new_one = rng.multinomial(m_one, pmf)
    return np.concatenate([new_zero, new_one], axis=1).astype(np.int64)


def scatter_counts(dist: np.ndarray, targets: np.ndarray, num_states: int) -> np.ndarray:
    """Re-aggregate a ``(A, S, K)`` transition-count tensor onto target states.

    ``targets[s, k]`` names the destination state of the ``k``-th outcome
    from source state ``s`` (shared across replicas). One offset-bincount
    replaces a Python loop over replicas; the float64 weights are exact for
    integer counts up to 2^53, far beyond any population size here.
    """
    replicas = dist.shape[0]
    flat = (
        np.arange(replicas, dtype=np.int64)[:, None] * num_states + targets.ravel()[None, :]
    ).ravel()
    out = np.bincount(
        flat, weights=dist.reshape(replicas, -1).ravel(), minlength=replicas * num_states
    )
    return out.reshape(replicas, num_states).astype(np.int64)
