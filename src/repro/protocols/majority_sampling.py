"""Sample-majority baseline: adopt the majority of an ℓ-sample.

The most obvious passive rule with ℓ samples: look at ℓ random agents and
adopt the majority opinion among them (keep on ties). This amplifies whatever
majority currently exists — so, started from an adversarial wrong-majority
configuration, it locks the population into the *wrong* consensus and the
single pinned source cannot tip it back in sub-polynomial time. It is the
canonical illustration of why trend-following (comparing across rounds, as FET
does) rather than level-following (thresholding within a round) is needed for
self-stabilization. Benchmark E-base quantifies the failure.
"""

from __future__ import annotations

import numpy as np

from ..core.batch import BatchedPopulation
from ..core.population import PopulationState
from ..core.protocol import Protocol, ProtocolState
from ..core.sampling import BatchedSampler, Sampler, _binomial_pmf_rows
from .counting import OPINION_DISPLAY, OPINION_STATE_PMF

__all__ = ["MajoritySamplingProtocol"]


class MajoritySamplingProtocol(Protocol):
    """Adopt the majority among ℓ uniform samples; keep opinion on ties."""

    passive = True
    batch_vectorized = True
    counts_supported = True

    def __init__(self, ell: int) -> None:
        if ell < 1:
            raise ValueError(f"ell must be >= 1, got {ell}")
        self.ell = ell
        self.name = f"sample-majority(ell={ell})"

    def init_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {}

    def step(
        self,
        population: PopulationState,
        state: ProtocolState,
        sampler: Sampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        counts = sampler.counts(population, self.ell, rng)
        opinions = population.opinions
        twice = 2 * counts
        return np.where(
            twice > self.ell,
            np.uint8(1),
            np.where(twice < self.ell, np.uint8(0), opinions),
        ).astype(np.uint8)

    def step_batch(
        self,
        batch: BatchedPopulation,
        states: ProtocolState,
        sampler: BatchedSampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        twice = 2 * sampler.counts(batch, self.ell, rng)
        return np.where(
            twice > self.ell,
            np.uint8(1),
            np.where(twice < self.ell, np.uint8(0), batch.opinions),
        ).astype(np.uint8)

    # ---------------------------------------------------------- count model
    #
    # Stateless, but the tie-keep rule makes the adoption probability depend
    # on the current opinion when ℓ is even: agents at opinion 1 also keep
    # on the tie count ℓ/2. Two binomial splits (one per opinion class).

    def count_states(self) -> int:
        return 2

    def count_display(self) -> np.ndarray:
        return OPINION_DISPLAY

    def count_init_state_pmf(self) -> np.ndarray:
        return OPINION_STATE_PMF

    def count_random_state_pmf(self) -> np.ndarray:
        return OPINION_STATE_PMF

    def step_counts(
        self, counts: np.ndarray, x_eff: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        pmf = _binomial_pmf_rows(self.ell, x_eff)
        p_up = pmf[:, self.ell // 2 + 1 :].sum(axis=1)
        p_tie = pmf[:, self.ell // 2] if self.ell % 2 == 0 else 0.0
        from_zero = rng.binomial(counts[:, 0], np.clip(p_up, 0.0, 1.0))
        from_one = rng.binomial(counts[:, 1], np.clip(p_up + p_tie, 0.0, 1.0))
        ones = from_zero + from_one
        return np.stack([counts.sum(axis=1) - ones, ones], axis=1).astype(np.int64)

    def samples_per_round(self) -> int:
        return self.ell
