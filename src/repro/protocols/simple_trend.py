"""The single-counter trend protocol — the first procedure of Section 1.3.

This is FET *without* the sample split: each round an agent draws one block of
``ℓ`` samples, compares its count to the count of the previous round, and
moves with the trend. The same counter is therefore used in two consecutive
comparisons, making ``Y_t`` and ``Y_{t+1}`` dependent even conditioned on
``(x_{t-1}, x_t)`` — the feature that, per the paper, "will make the analysis
difficult" and motivates the FET split.

It is included as an ablation target (E-ablate in DESIGN.md): empirically it
behaves very similarly to FET, and the ablation benchmark quantifies that.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.batch import BatchedPopulation
from ..core.population import PopulationState
from ..core.protocol import Protocol, ProtocolState
from ..core.sampling import BatchedSampler, Sampler

__all__ = ["SimpleTrendProtocol"]


class SimpleTrendProtocol(Protocol):
    """Single-counter trend following (ℓ samples per round)."""

    passive = True
    batch_vectorized = True

    def __init__(self, ell: int) -> None:
        if ell < 1:
            raise ValueError(f"ell must be >= 1, got {ell}")
        self.ell = ell
        self.name = f"simple-trend(ell={ell})"

    def init_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {"prev_count": np.zeros(n, dtype=np.int64)}

    def randomize_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {"prev_count": rng.integers(0, self.ell + 1, size=n, dtype=np.int64)}

    def init_state_batch(
        self, replicas: int, n: int, rng: np.random.Generator
    ) -> ProtocolState:
        return {"prev_count": np.zeros((replicas, n), dtype=np.int64)}

    def randomize_state_batch(
        self, replicas: int, n: int, rng: np.random.Generator
    ) -> ProtocolState:
        return {"prev_count": rng.integers(0, self.ell + 1, size=(replicas, n), dtype=np.int64)}

    def step(
        self,
        population: PopulationState,
        state: ProtocolState,
        sampler: Sampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        count = sampler.counts(population, self.ell, rng)
        prev = state["prev_count"]
        opinions = population.opinions
        new = np.where(
            count > prev,
            np.uint8(1),
            np.where(count < prev, np.uint8(0), opinions),
        ).astype(np.uint8)
        state["prev_count"] = count
        return new

    def step_batch(
        self,
        batch: BatchedPopulation,
        states: ProtocolState,
        sampler: BatchedSampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        count = sampler.counts(batch, self.ell, rng)
        prev = states["prev_count"]
        new = np.where(
            count > prev,
            np.uint8(1),
            np.where(count < prev, np.uint8(0), batch.opinions),
        ).astype(np.uint8)
        states["prev_count"] = count
        return new

    def samples_per_round(self) -> int:
        return self.ell

    def memory_bits(self) -> float:
        return math.log2(self.ell + 1)
