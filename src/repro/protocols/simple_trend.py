"""The single-counter trend protocol — the first procedure of Section 1.3.

This is FET *without* the sample split: each round an agent draws one block of
``ℓ`` samples, compares its count to the count of the previous round, and
moves with the trend. The same counter is therefore used in two consecutive
comparisons, making ``Y_t`` and ``Y_{t+1}`` dependent even conditioned on
``(x_{t-1}, x_t)`` — the feature that, per the paper, "will make the analysis
difficult" and motivates the FET split.

It is included as an ablation target (E-ablate in DESIGN.md): empirically it
behaves very similarly to FET, and the ablation benchmark quantifies that.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.batch import BatchedPopulation
from ..core.population import PopulationState
from ..core.protocol import Protocol, ProtocolState
from ..core.sampling import BatchedSampler, Sampler, _binomial_pmf_rows
from .counting import (
    prev_count_display,
    prev_count_init_pmf,
    prev_count_random_pmf,
    scatter_counts,
)

__all__ = ["SimpleTrendProtocol"]


class SimpleTrendProtocol(Protocol):
    """Single-counter trend following (ℓ samples per round)."""

    passive = True
    batch_vectorized = True
    counts_supported = True

    def __init__(self, ell: int) -> None:
        if ell < 1:
            raise ValueError(f"ell must be >= 1, got {ell}")
        self.ell = ell
        self.name = f"simple-trend(ell={ell})"
        self._count_targets: np.ndarray | None = None

    def init_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {"prev_count": np.zeros(n, dtype=np.int64)}

    def randomize_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {"prev_count": rng.integers(0, self.ell + 1, size=n, dtype=np.int64)}

    def init_state_batch(
        self, replicas: int, n: int, rng: np.random.Generator
    ) -> ProtocolState:
        return {"prev_count": np.zeros((replicas, n), dtype=np.int64)}

    def randomize_state_batch(
        self, replicas: int, n: int, rng: np.random.Generator
    ) -> ProtocolState:
        return {"prev_count": rng.integers(0, self.ell + 1, size=(replicas, n), dtype=np.int64)}

    def step(
        self,
        population: PopulationState,
        state: ProtocolState,
        sampler: Sampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        count = sampler.counts(population, self.ell, rng)
        prev = state["prev_count"]
        opinions = population.opinions
        new = np.where(
            count > prev,
            np.uint8(1),
            np.where(count < prev, np.uint8(0), opinions),
        ).astype(np.uint8)
        state["prev_count"] = count
        return new

    def step_batch(
        self,
        batch: BatchedPopulation,
        states: ProtocolState,
        sampler: BatchedSampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        count = sampler.counts(batch, self.ell, rng)
        prev = states["prev_count"]
        new = np.where(
            count > prev,
            np.uint8(1),
            np.where(count < prev, np.uint8(0), batch.opinions),
        ).astype(np.uint8)
        states["prev_count"] = count
        return new

    # ---------------------------------------------------------- count model
    #
    # Same state space as FET (``s = opinion·(ℓ+1) + prev``) but the kernel
    # does NOT factorize: the carried counter *is* the compared count, so
    # the new ``(opinion, prev)`` pair is a deterministic function of the
    # source state and the single draw ``count ~ Binomial(ℓ, x̃)``. The
    # transition is one multinomial split per source state followed by a
    # scatter onto the precomputed ``(s, count) -> s′`` map — exactly the
    # correlation that distinguishes this ablation from FET, preserved at
    # the count level.

    def count_states(self) -> int:
        return 2 * (self.ell + 1)

    def count_display(self) -> np.ndarray:
        return prev_count_display(self.ell)

    def count_init_state_pmf(self) -> np.ndarray:
        return prev_count_init_pmf(self.ell)

    def count_random_state_pmf(self) -> np.ndarray:
        return prev_count_random_pmf(self.ell)

    def _targets(self) -> np.ndarray:
        if self._count_targets is None:
            width = self.ell + 1
            prev = np.tile(np.arange(width), 2)[:, None]
            opinion = np.repeat(np.array([0, 1]), width)[:, None]
            count = np.arange(width)[None, :]
            new_opinion = np.where(count > prev, 1, np.where(count < prev, 0, opinion))
            self._count_targets = new_opinion * width + count
        return self._count_targets

    def step_counts(
        self, counts: np.ndarray, x_eff: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        pmf = _binomial_pmf_rows(self.ell, x_eff)
        dist = rng.multinomial(counts, pmf[:, None, :])
        return scatter_counts(dist, self._targets(), 2 * (self.ell + 1))

    def samples_per_round(self) -> int:
        return self.ell

    def memory_bits(self) -> float:
        return math.log2(self.ell + 1)
