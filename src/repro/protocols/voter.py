"""Voter model baseline.

Classic opinion dynamics (Liggett 1985, cited in Section 1.4): each round,
each agent copies the opinion of one uniformly sampled agent. It is passive
(the revealed information is the opinion) but it is *not* a solution to
source-driven bit-dissemination: from an adversarial almost-wrong-consensus
start it typically reaches the *wrong* consensus, and with a pinned source the
expected escape time back to the correct consensus is polynomial in ``n``, not
poly-logarithmic. The baseline benchmark (E-base) measures exactly this
failure mode.
"""

from __future__ import annotations

import numpy as np

from ..core.batch import BatchedPopulation
from ..core.population import PopulationState
from ..core.protocol import Protocol, ProtocolState
from ..core.sampling import BatchedSampler, Sampler
from .counting import OPINION_DISPLAY, OPINION_STATE_PMF

__all__ = ["VoterProtocol"]


class VoterProtocol(Protocol):
    """Copy one uniformly random agent's opinion each round."""

    passive = True
    batch_vectorized = True
    counts_supported = True
    name = "voter"

    def init_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {}

    def step(
        self,
        population: PopulationState,
        state: ProtocolState,
        sampler: Sampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        # One sample per agent; the sampled opinion is Bernoulli(x) under
        # uniform-with-replacement sampling, i.e. counts with ell = 1.
        seen = sampler.counts(population, 1, rng)
        return (seen > 0).astype(np.uint8)

    def step_batch(
        self,
        batch: BatchedPopulation,
        states: ProtocolState,
        sampler: BatchedSampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        seen = sampler.counts(batch, 1, rng)
        return (seen > 0).astype(np.uint8)

    # ---------------------------------------------------------- count model
    #
    # Stateless: the opinion bit is the whole state. Every agent adopts 1
    # independently with probability x̃, so the new one-count is a single
    # binomial draw per replica.

    def count_states(self) -> int:
        return 2

    def count_display(self) -> np.ndarray:
        return OPINION_DISPLAY

    def count_init_state_pmf(self) -> np.ndarray:
        return OPINION_STATE_PMF

    def count_random_state_pmf(self) -> np.ndarray:
        return OPINION_STATE_PMF

    def step_counts(
        self, counts: np.ndarray, x_eff: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n_free = counts.sum(axis=1)
        ones = rng.binomial(n_free, x_eff)
        return np.stack([n_free - ones, ones], axis=1).astype(np.int64)

    def samples_per_round(self) -> int:
        return 1
