"""Voter model baseline.

Classic opinion dynamics (Liggett 1985, cited in Section 1.4): each round,
each agent copies the opinion of one uniformly sampled agent. It is passive
(the revealed information is the opinion) but it is *not* a solution to
source-driven bit-dissemination: from an adversarial almost-wrong-consensus
start it typically reaches the *wrong* consensus, and with a pinned source the
expected escape time back to the correct consensus is polynomial in ``n``, not
poly-logarithmic. The baseline benchmark (E-base) measures exactly this
failure mode.
"""

from __future__ import annotations

import numpy as np

from ..core.batch import BatchedPopulation
from ..core.population import PopulationState
from ..core.protocol import Protocol, ProtocolState
from ..core.sampling import BatchedSampler, Sampler

__all__ = ["VoterProtocol"]


class VoterProtocol(Protocol):
    """Copy one uniformly random agent's opinion each round."""

    passive = True
    batch_vectorized = True
    name = "voter"

    def init_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {}

    def step(
        self,
        population: PopulationState,
        state: ProtocolState,
        sampler: Sampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        # One sample per agent; the sampled opinion is Bernoulli(x) under
        # uniform-with-replacement sampling, i.e. counts with ell = 1.
        seen = sampler.counts(population, 1, rng)
        return (seen > 0).astype(np.uint8)

    def step_batch(
        self,
        batch: BatchedPopulation,
        states: ProtocolState,
        sampler: BatchedSampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        seen = sampler.counts(batch, 1, rng)
        return (seen > 0).astype(np.uint8)

    def samples_per_round(self) -> int:
        return 1
