"""Oracle-clock two-subphase protocol — the O(log n) scheme of Section 1.4.

The paper notes that *if all agents share the same notion of global time*,
bit-dissemination is solvable in ``O(log n)`` rounds even under passive
communication: divide time into phases of length ``T = 4·⌈log2 n⌉``, each
split into two subphases of ``2·⌈log2 n⌉`` rounds. During the first subphase a
non-source agent copies an observed 0 (ignoring 1s); during the second it
copies an observed 1 (ignoring 0s). Whichever opinion the source holds, by the
end of the corresponding subphase the whole population holds it w.h.p. and
never leaves it (the other subphase can no longer show the now-extinct
opinion).

The shared clock is an *oracle* here: it is exempt from adversarial
corruption. That is precisely what makes this protocol unfit for the paper's
setting — it shows why the self-stabilizing clock-synchronization machinery of
Boczkowski et al. 2019 / Bastide et al. 2021 (see
:mod:`repro.protocols.clock_sync`) was needed, and it provides the fast
reference point the benchmarks compare FET against. Adversarial
``randomize_state`` shifts the shared clock by a random offset (the phase
structure is cyclic, so the protocol must and does tolerate that); it does not
desynchronize agents, which the oracle forbids.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.batch import BatchedPopulation
from ..core.population import PopulationState
from ..core.protocol import Protocol, ProtocolState
from ..core.sampling import BatchedSampler, Sampler

__all__ = ["OracleClockProtocol"]


class OracleClockProtocol(Protocol):
    """Two-subphase dissemination driven by a shared (oracle) clock.

    Parameters
    ----------
    n_hint:
        Population size used to size the subphase length ``2·⌈log2 n⌉``.
    ell:
        Samples per round (the classic scheme uses 1).
    """

    passive = True
    batch_vectorized = True

    def __init__(self, n_hint: int, ell: int = 1) -> None:
        if n_hint < 2:
            raise ValueError(f"n_hint must be >= 2, got {n_hint}")
        if ell < 1:
            raise ValueError(f"ell must be >= 1, got {ell}")
        self.ell = ell
        self.subphase_len = max(1, 2 * math.ceil(math.log2(n_hint)))
        self.period = 2 * self.subphase_len
        self.name = f"oracle-clock(T={self.period},ell={ell})"

    def init_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {"clock": np.zeros(1, dtype=np.int64)}

    def randomize_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {"clock": np.array([rng.integers(0, self.period)], dtype=np.int64)}

    def init_state_batch(
        self, replicas: int, n: int, rng: np.random.Generator
    ) -> ProtocolState:
        return {"clock": np.zeros((replicas, 1), dtype=np.int64)}

    def randomize_state_batch(
        self, replicas: int, n: int, rng: np.random.Generator
    ) -> ProtocolState:
        return {"clock": rng.integers(0, self.period, size=(replicas, 1), dtype=np.int64)}

    def step(
        self,
        population: PopulationState,
        state: ProtocolState,
        sampler: Sampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        t = int(state["clock"][0])
        in_zero_subphase = (t % self.period) < self.subphase_len
        counts = sampler.counts(population, self.ell, rng)
        opinions = population.opinions
        if in_zero_subphase:
            # Adopt 0 iff at least one sampled opinion is 0.
            saw_zero = counts < self.ell
            new = np.where(saw_zero, np.uint8(0), opinions)
        else:
            saw_one = counts > 0
            new = np.where(saw_one, np.uint8(1), opinions)
        state["clock"][0] = t + 1
        return new.astype(np.uint8)

    def step_batch(
        self,
        batch: BatchedPopulation,
        states: ProtocolState,
        sampler: BatchedSampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        clocks = states["clock"][:, 0]  # (A,) per-replica oracle clocks
        in_zero_subphase = (clocks % self.period) < self.subphase_len
        counts = sampler.counts(batch, self.ell, rng)
        opinions = batch.opinions
        zero_rule = np.where(counts < self.ell, np.uint8(0), opinions)
        one_rule = np.where(counts > 0, np.uint8(1), opinions)
        new = np.where(in_zero_subphase[:, None], zero_rule, one_rule).astype(np.uint8)
        states["clock"][:, 0] = clocks + 1
        return new

    def samples_per_round(self) -> int:
        return self.ell

    def memory_bits(self) -> float:
        # The clock is an oracle, but an honest accounting charges its width.
        return math.log2(self.period)
