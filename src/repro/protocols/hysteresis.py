"""Dead-band (hysteresis) FET — a negative-result ablation.

The noise study (E-noise) shows FET's consensus is a knife-edge: any
observation noise knocks the population into sustained oscillation, because
the trend rule amplifies a single noisy defection. The obvious fix is
hysteresis: only react to trends larger than a dead-band ``band``::

    count′_t > count″_{t-1} + band  → adopt 1
    count′_t < count″_{t-1} − band  → adopt 0
    otherwise                        → keep

Measured outcome (bench E-hyst): the fix **does not work** —

* retention under noise is *not* restored: near (but not at) consensus the
  count fluctuation scale is ``√(ℓ·x(1−x))``, which exceeds any fixed band
  long before unanimity is reached, so the oscillations survive;
* noiseless convergence *slows dramatically* (the Yellow-escape mechanism
  of Section 3 lives off exactly the small ``O(√ℓ)``-scale trends the band
  suppresses), and large bands stall convergence outright.

The alternative — anchoring retention on the sample *level* (e.g. "never
leave opinion 1 while ``count′ ≥ (1−θ)ℓ``") — provably breaks
self-stabilization: it recreates the frozen-unanimity witness of the
Section 1.2 impossibility argument around the *wrong* consensus. Together
these ablations show the paper's bare tie rule is not an oversight but a
forced move: sensitivity to vanishing trends is precisely what buys
self-stabilization. ``band = 0`` recovers FET exactly.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.batch import BatchedPopulation
from ..core.population import PopulationState
from ..core.protocol import Protocol, ProtocolState
from ..core.sampling import BatchedSampler, Sampler
from .counting import (
    prev_count_display,
    prev_count_init_pmf,
    prev_count_random_pmf,
    two_block_trend_step_counts,
)

__all__ = ["HysteresisFETProtocol"]


class HysteresisFETProtocol(Protocol):
    """FET with a symmetric dead-band on the trend comparison."""

    passive = True
    batch_vectorized = True
    counts_supported = True

    def __init__(self, ell: int, band: int) -> None:
        if ell < 1:
            raise ValueError(f"ell must be >= 1, got {ell}")
        if band < 0:
            raise ValueError(f"band must be non-negative, got {band}")
        self.ell = ell
        self.band = band
        self.name = f"hysteresis-fet(ell={ell},band={band})"

    def init_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {"prev_count": np.zeros(n, dtype=np.int64)}

    def randomize_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {"prev_count": rng.integers(0, self.ell + 1, size=n, dtype=np.int64)}

    def init_state_batch(
        self, replicas: int, n: int, rng: np.random.Generator
    ) -> ProtocolState:
        return {"prev_count": np.zeros((replicas, n), dtype=np.int64)}

    def randomize_state_batch(
        self, replicas: int, n: int, rng: np.random.Generator
    ) -> ProtocolState:
        return {"prev_count": rng.integers(0, self.ell + 1, size=(replicas, n), dtype=np.int64)}

    def step(
        self,
        population: PopulationState,
        state: ProtocolState,
        sampler: Sampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        blocks = sampler.count_blocks(population, self.ell, 2, rng)
        count_prime = blocks[0]
        count_dprime = blocks[1]
        prev = state["prev_count"]
        opinions = population.opinions
        new = np.where(
            count_prime > prev + self.band,
            np.uint8(1),
            np.where(count_prime < prev - self.band, np.uint8(0), opinions),
        ).astype(np.uint8)
        state["prev_count"] = count_dprime
        return new

    def step_batch(
        self,
        batch: BatchedPopulation,
        states: ProtocolState,
        sampler: BatchedSampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        blocks = sampler.count_blocks(batch, self.ell, 2, rng)
        count_prime = blocks[0]
        prev = states["prev_count"]
        new = np.where(
            count_prime > prev + self.band,
            np.uint8(1),
            np.where(count_prime < prev - self.band, np.uint8(0), batch.opinions),
        ).astype(np.uint8)
        states["prev_count"] = blocks[1]
        return new

    # ---------------------------------------------------------- count model
    #
    # Same state space as FET (``s = opinion·(ℓ+1) + prev_count``); the
    # dead-band only changes the adoption thresholds in the factorized
    # transition. ``band = 0`` recovers FET's count model exactly.

    def count_states(self) -> int:
        return 2 * (self.ell + 1)

    def count_display(self) -> np.ndarray:
        return prev_count_display(self.ell)

    def count_init_state_pmf(self) -> np.ndarray:
        return prev_count_init_pmf(self.ell)

    def count_random_state_pmf(self) -> np.ndarray:
        return prev_count_random_pmf(self.ell)

    def step_counts(
        self, counts: np.ndarray, x_eff: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return two_block_trend_step_counts(counts, x_eff, rng, self.ell, self.band)

    def samples_per_round(self) -> int:
        return 2 * self.ell

    def memory_bits(self) -> float:
        return math.log2(self.ell + 1)
