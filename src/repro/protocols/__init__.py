"""Protocols: the paper's FET plus all comparison baselines."""

from .clock_sync import ClockSyncProtocol
from .fet import DEFAULT_SAMPLE_CONSTANT, FETProtocol, ell_for
from .hysteresis import HysteresisFETProtocol
from .majority import MajorityProtocol
from .majority_sampling import MajoritySamplingProtocol
from .oracle_clock import OracleClockProtocol
from .simple_trend import SimpleTrendProtocol
from .undecided import UndecidedStateProtocol
from .voter import VoterProtocol

__all__ = [
    "ClockSyncProtocol",
    "DEFAULT_SAMPLE_CONSTANT",
    "FETProtocol",
    "HysteresisFETProtocol",
    "MajorityProtocol",
    "MajoritySamplingProtocol",
    "OracleClockProtocol",
    "SimpleTrendProtocol",
    "UndecidedStateProtocol",
    "VoterProtocol",
    "ell_for",
]
