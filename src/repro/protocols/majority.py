"""3-majority dynamics baseline.

Each round, each agent samples three agents uniformly at random and adopts the
majority opinion among them (Doerr et al. 2011, cited in Section 1.4). Like
the voter model it is passive, converges quickly to *some* consensus — but the
consensus tracks the initial majority, not the source's opinion, so it fails
self-stabilizing bit-dissemination from adversarial starts. A generalized
``k``-majority (odd ``k``) is provided for ablations.
"""

from __future__ import annotations

import numpy as np

from ..core.batch import BatchedPopulation
from ..core.population import PopulationState
from ..core.protocol import Protocol, ProtocolState
from ..core.sampling import BatchedSampler, Sampler, _binomial_pmf_rows
from .counting import OPINION_DISPLAY, OPINION_STATE_PMF

__all__ = ["MajorityProtocol"]


class MajorityProtocol(Protocol):
    """Adopt the majority among ``k`` uniform samples (odd ``k``, ties impossible)."""

    passive = True
    batch_vectorized = True
    counts_supported = True

    def __init__(self, k: int = 3) -> None:
        if k < 1 or k % 2 == 0:
            raise ValueError(f"k must be odd and >= 1, got {k}")
        self.k = k
        self.name = f"{k}-majority"

    def init_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {}

    def step(
        self,
        population: PopulationState,
        state: ProtocolState,
        sampler: Sampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        counts = sampler.counts(population, self.k, rng)
        return (2 * counts > self.k).astype(np.uint8)

    def step_batch(
        self,
        batch: BatchedPopulation,
        states: ProtocolState,
        sampler: BatchedSampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        counts = sampler.counts(batch, self.k, rng)
        return (2 * counts > self.k).astype(np.uint8)

    # ---------------------------------------------------------- count model
    #
    # Stateless and opinion-independent (odd k, no ties): every agent adopts
    # 1 with probability P(Binomial(k, x̃) > k/2), so the new one-count is a
    # single binomial draw per replica.

    def count_states(self) -> int:
        return 2

    def count_display(self) -> np.ndarray:
        return OPINION_DISPLAY

    def count_init_state_pmf(self) -> np.ndarray:
        return OPINION_STATE_PMF

    def count_random_state_pmf(self) -> np.ndarray:
        return OPINION_STATE_PMF

    def step_counts(
        self, counts: np.ndarray, x_eff: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        pmf = _binomial_pmf_rows(self.k, x_eff)
        p_one = pmf[:, (self.k + 1) // 2 :].sum(axis=1)
        n_free = counts.sum(axis=1)
        ones = rng.binomial(n_free, np.clip(p_one, 0.0, 1.0))
        return np.stack([n_free - ones, ones], axis=1).astype(np.int64)

    def samples_per_round(self) -> int:
        return self.k
