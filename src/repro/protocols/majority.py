"""3-majority dynamics baseline.

Each round, each agent samples three agents uniformly at random and adopts the
majority opinion among them (Doerr et al. 2011, cited in Section 1.4). Like
the voter model it is passive, converges quickly to *some* consensus — but the
consensus tracks the initial majority, not the source's opinion, so it fails
self-stabilizing bit-dissemination from adversarial starts. A generalized
``k``-majority (odd ``k``) is provided for ablations.
"""

from __future__ import annotations

import numpy as np

from ..core.batch import BatchedPopulation
from ..core.population import PopulationState
from ..core.protocol import Protocol, ProtocolState
from ..core.sampling import BatchedSampler, Sampler

__all__ = ["MajorityProtocol"]


class MajorityProtocol(Protocol):
    """Adopt the majority among ``k`` uniform samples (odd ``k``, ties impossible)."""

    passive = True
    batch_vectorized = True

    def __init__(self, k: int = 3) -> None:
        if k < 1 or k % 2 == 0:
            raise ValueError(f"k must be odd and >= 1, got {k}")
        self.k = k
        self.name = f"{k}-majority"

    def init_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {}

    def step(
        self,
        population: PopulationState,
        state: ProtocolState,
        sampler: Sampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        counts = sampler.counts(population, self.k, rng)
        return (2 * counts > self.k).astype(np.uint8)

    def step_batch(
        self,
        batch: BatchedPopulation,
        states: ProtocolState,
        sampler: BatchedSampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        counts = sampler.counts(batch, self.k, rng)
        return (2 * counts > self.k).astype(np.uint8)

    def samples_per_round(self) -> int:
        return self.k
