"""Decoupled-message baseline: clock synchronization + two-subphase spread.

Stand-in for the protocols of Boczkowski, Korman & Natale 2019 (3-bit
messages) and Bastide, Giakkoupis & Saribekyan 2021 (1-bit messages), which
solve self-stabilizing bit-dissemination by synchronizing clocks and then
running the two-subphase rule of Section 1.4. Their defining property — the
one the paper contrasts FET against — is that the *message* an agent reveals
is decoupled from its opinion: here each agent exposes its clock value in
addition to its opinion bit, so the protocol is **not** passive
(``passive = False``) and is disqualified in the paper's model.

Construction (simplified; see DESIGN.md §4 for the substitution rationale):

1. Every agent keeps a clock in ``{0, …, T-1}`` with ``T = 4·⌈log2 n⌉``.
2. Each round it samples ℓ agents, reads their clocks (the decoupled
   message), and resets its own clock to the plurality of the sampled clocks
   (ties to the smallest value), plus one. Plurality-with-increment
   empirically drives arbitrary initial clocks to agreement in O(log n)
   rounds when ℓ = Θ(log n).
3. The opinion is updated with the two-subphase rule driven by the agent's
   own clock: during the first half-period adopt 0 if any sampled opinion is
   0; during the second half adopt 1 if any sampled opinion is 1.

Unlike the cited works, the clock-agreement step here is empirical rather
than proven; the baseline benchmark (E-base) reports its measured success
rate alongside FET's.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.population import PopulationState
from ..core.protocol import Protocol, ProtocolState
from ..core.sampling import Sampler

__all__ = ["ClockSyncProtocol"]


class ClockSyncProtocol(Protocol):
    """Plurality clock sync feeding the two-subphase dissemination rule."""

    passive = False

    def __init__(self, n_hint: int, ell: int) -> None:
        if n_hint < 2:
            raise ValueError(f"n_hint must be >= 2, got {n_hint}")
        if ell < 1:
            raise ValueError(f"ell must be >= 1, got {ell}")
        self.ell = ell
        self.subphase_len = max(1, 2 * math.ceil(math.log2(n_hint)))
        self.period = 2 * self.subphase_len
        self.name = f"clock-sync(T={self.period},ell={ell})"

    def init_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {"clock": np.zeros(n, dtype=np.int64)}

    def randomize_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        """Fully adversarial: every agent's clock is arbitrary."""
        return {"clock": rng.integers(0, self.period, size=n, dtype=np.int64)}

    def step(
        self,
        population: PopulationState,
        state: ProtocolState,
        sampler: Sampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n = population.n
        clocks = state["clock"]
        # Decoupled messages require reading sampled agents' state, so this
        # protocol materializes indices itself (uniform with replacement),
        # independent of the engine's count sampler.
        idx = rng.integers(0, n, size=(n, self.ell))

        sampled_clocks = clocks[idx]  # (n, ell)
        # Per-agent plurality over period values; ties resolve to the
        # smallest clock value (argmax returns the first maximum).
        flat = (np.arange(n)[:, None] * self.period + sampled_clocks).ravel()
        tallies = np.bincount(flat, minlength=n * self.period).reshape(n, self.period)
        new_clocks = (tallies.argmax(axis=1) + 1) % self.period

        sampled_opinions = population.opinions[idx]
        saw_zero = (sampled_opinions == 0).any(axis=1)
        saw_one = (sampled_opinions == 1).any(axis=1)
        in_zero_subphase = new_clocks < self.subphase_len

        opinions = population.opinions
        new = np.where(
            in_zero_subphase & saw_zero,
            np.uint8(0),
            np.where(~in_zero_subphase & saw_one, np.uint8(1), opinions),
        ).astype(np.uint8)

        state["clock"] = new_clocks
        return new

    def samples_per_round(self) -> int:
        return self.ell

    def memory_bits(self) -> float:
        return math.log2(self.period)

    def clock_agreement(self, state: ProtocolState) -> float:
        """Fraction of agents holding the plurality clock value (diagnostic)."""
        clocks = state["clock"]
        counts = np.bincount(clocks, minlength=self.period)
        return float(counts.max() / clocks.size)
