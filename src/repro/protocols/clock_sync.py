"""Decoupled-message baseline: clock synchronization + two-subphase spread.

Stand-in for the protocols of Boczkowski, Korman & Natale 2019 (3-bit
messages) and Bastide, Giakkoupis & Saribekyan 2021 (1-bit messages), which
solve self-stabilizing bit-dissemination by synchronizing clocks and then
running the two-subphase rule of Section 1.4. Their defining property — the
one the paper contrasts FET against — is that the *message* an agent reveals
is decoupled from its opinion: here each agent exposes its clock value in
addition to its opinion bit, so the protocol is **not** passive
(``passive = False``) and is disqualified in the paper's model.

Construction (simplified; see DESIGN.md §4 for the substitution rationale):

1. Every agent keeps a clock in ``{0, …, T-1}`` with ``T = 4·⌈log2 n⌉``.
2. Each round it samples ℓ agents, reads their clocks (the decoupled
   message), and resets its own clock to the plurality of the sampled clocks
   (ties to the smallest value), plus one. Plurality-with-increment
   empirically drives arbitrary initial clocks to agreement in O(log n)
   rounds when ℓ = Θ(log n).
3. The opinion is updated with the two-subphase rule driven by the agent's
   own clock: during the first half-period adopt 0 if any sampled opinion is
   0; during the second half adopt 1 if any sampled opinion is 1.

Unlike the cited works, the clock-agreement step here is empirical rather
than proven; the baseline benchmark (E-base) reports its measured success
rate alongside FET's.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..core.population import PopulationState
from ..core.protocol import Protocol, ProtocolState
from ..core.sampling import BatchedSampler, Sampler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.batch import BatchedPopulation

__all__ = ["ClockSyncProtocol"]

#: Ceiling on elements per intermediate array in ``step_batch``. The identity
#: samples and the per-(agent, clock, opinion) tallies are ``(A, n, ell)`` /
#: ``(A, n, 2·period)`` shaped; replicas are processed in chunks so neither
#: exceeds this. Besides bounding peak memory, the cap keeps each chunk's
#: tensors cache-resident — measured fastest around 0.25–0.5M elements; a
#: 4× larger budget was ~1.9× slower end to end.
_CHUNK_ELEMENT_BUDGET = 500_000


def _observation_epsilon(sampler: object) -> float:
    """Per-bit observation-noise level of the engine's sampler, if any.

    Clock-sync reads sampled agents' state directly instead of consuming
    count observations, so the noisy count samplers cannot inject noise for
    it; the protocol applies their ``epsilon`` to the opinion bits it reads.
    """
    return float(getattr(sampler, "epsilon", 0.0) or 0.0)


class ClockSyncProtocol(Protocol):
    """Plurality clock sync feeding the two-subphase dissemination rule."""

    passive = False
    batch_vectorized = True

    def __init__(self, n_hint: int, ell: int) -> None:
        if n_hint < 2:
            raise ValueError(f"n_hint must be >= 2, got {n_hint}")
        if ell < 1:
            raise ValueError(f"ell must be >= 1, got {ell}")
        self.ell = ell
        self.subphase_len = max(1, 2 * math.ceil(math.log2(n_hint)))
        self.period = 2 * self.subphase_len
        self.name = f"clock-sync(T={self.period},ell={ell})"

    def init_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        return {"clock": np.zeros(n, dtype=np.int64)}

    def randomize_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        """Fully adversarial: every agent's clock is arbitrary."""
        return {"clock": rng.integers(0, self.period, size=n, dtype=np.int64)}

    def init_state_batch(
        self, replicas: int, n: int, rng: np.random.Generator
    ) -> ProtocolState:
        return {"clock": np.zeros((replicas, n), dtype=np.int64)}

    def randomize_state_batch(
        self, replicas: int, n: int, rng: np.random.Generator
    ) -> ProtocolState:
        return {"clock": rng.integers(0, self.period, size=(replicas, n), dtype=np.int64)}

    def step(
        self,
        population: PopulationState,
        state: ProtocolState,
        sampler: Sampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n = population.n
        clocks = state["clock"]
        # Decoupled messages require reading sampled agents' state, so this
        # protocol materializes indices itself (uniform with replacement),
        # independent of the engine's count sampler. int32 indices: half the
        # memory traffic of the gathers, and n always fits.
        idx = rng.integers(0, n, size=(n, self.ell), dtype=np.int32)

        sampled_clocks = clocks[idx]  # (n, ell)
        # Per-agent plurality over period values; ties resolve to the
        # smallest clock value (argmax returns the first maximum).
        flat = (np.arange(n)[:, None] * self.period + sampled_clocks).ravel()
        tallies = np.bincount(flat, minlength=n * self.period).reshape(n, self.period)
        new_clocks = (tallies.argmax(axis=1) + 1) % self.period

        sampled_opinions = population.opinions[idx]
        epsilon = _observation_epsilon(sampler)
        if epsilon:
            # Honor the engine's per-bit observation-noise model on the
            # opinion channel: each observed bit independently flipped with
            # probability epsilon (the clock message stays clean — the noise
            # model of repro.core.noise is defined on opinion observations).
            flips = rng.random(idx.shape) < epsilon
            sampled_opinions = sampled_opinions ^ flips.astype(np.uint8)
        saw_zero = (sampled_opinions == 0).any(axis=1)
        saw_one = (sampled_opinions == 1).any(axis=1)
        in_zero_subphase = new_clocks < self.subphase_len

        opinions = population.opinions
        new = np.where(
            in_zero_subphase & saw_zero,
            np.uint8(0),
            np.where(~in_zero_subphase & saw_one, np.uint8(1), opinions),
        ).astype(np.uint8)

        state["clock"] = new_clocks
        return new

    def step_batch(
        self,
        batch: "BatchedPopulation",
        states: ProtocolState,
        sampler: BatchedSampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """All replicas at once: identity samples, plurality, two subphases.

        The scalar body broadcasts almost verbatim: ``(A, n, ell)`` identity
        draws replace the ``(n, ell)`` ones, and the per-agent plurality
        becomes a single bincount over flattened ``(replica, agent, clock)``
        keys. ``argmax`` along the clock axis keeps the scalar tie rule
        (ties resolve to the smallest clock value). Replicas are processed
        in chunks so the ``(A, n, ell)`` sample tensor and the
        ``(A, n, period)`` tally tensor stay within a fixed element budget;
        with one replica per chunk the draws consume the stream exactly as
        the scalar ``step`` does (the identical-stream equivalence tests
        rely on this).
        """
        n = batch.n
        replicas = batch.replicas
        clocks = states["clock"]
        opinions = batch.opinions
        new_opinions = np.empty_like(opinions)
        new_clocks = np.empty_like(clocks)
        width = 2 * self.period
        epsilon = _observation_epsilon(sampler)
        # Reading a sampled agent's state is one gather: its clock and its
        # opinion are packed into a single key (clock, opinion-bit), so the
        # bincount below tallies both at once.
        packed = (clocks * 2 + opinions).astype(np.int32)
        per_replica = n * max(self.ell, width)
        chunk = max(1, _CHUNK_ELEMENT_BUDGET // per_replica)
        for start in range(0, replicas, chunk):
            stop = min(start + chunk, replicas)
            c = stop - start
            idx = rng.integers(0, n, size=(c, n, self.ell), dtype=np.int32)
            rows = np.arange(start, stop)[:, None, None]
            sampled = packed[rows, idx].reshape(c * n, self.ell)  # (c·n, ell)
            if epsilon:
                # Per-bit observation noise on the opinion channel: flipping
                # an observed bit is an XOR on the packed key's low bit (the
                # clock message stays clean, as in the scalar step).
                sampled = sampled ^ (rng.random(sampled.shape) < epsilon)
            # One flat bincount over (replica, agent, clock, opinion) keys:
            # entry (r, i, v, b) counts how often agent i of replica r sampled
            # clock value v from an agent with opinion b.
            flat = (np.arange(c * n)[:, None] * width + sampled).ravel()
            tallies = np.bincount(flat, minlength=c * n * width).reshape(
                c, n, self.period, 2
            )
            # Plurality over clock values ignores the opinion bit; argmax
            # keeps the scalar tie rule (ties resolve to the smallest clock).
            # Slice-add instead of sum(axis=3): numpy's reduction over a
            # length-2 axis pays per-element loop overhead (~7× slower here).
            clock_tallies = tallies[:, :, :, 0] + tallies[:, :, :, 1]
            chunk_clocks = (clock_tallies.argmax(axis=2) + 1) % self.period

            ones_seen = tallies[:, :, :, 1].sum(axis=2)
            saw_one = ones_seen > 0
            saw_zero = ones_seen < self.ell
            in_zero_subphase = chunk_clocks < self.subphase_len

            chunk_opinions = opinions[start:stop]
            new_opinions[start:stop] = np.where(
                in_zero_subphase & saw_zero,
                np.uint8(0),
                np.where(~in_zero_subphase & saw_one, np.uint8(1), chunk_opinions),
            ).astype(np.uint8)
            new_clocks[start:stop] = chunk_clocks
        states["clock"] = new_clocks
        return new_opinions

    def samples_per_round(self) -> int:
        return self.ell

    def memory_bits(self) -> float:
        return math.log2(self.period)

    def clock_agreement(self, state: ProtocolState) -> float:
        """Fraction of agents holding the plurality clock value (diagnostic).

        Accepts scalar ``(n,)`` and batched ``(R, n)`` state; the batched
        form reports the mean per-replica plurality fraction.
        """
        clocks = state["clock"]
        if clocks.ndim == 1:
            counts = np.bincount(clocks, minlength=self.period)
            return float(counts.max() / clocks.size)
        replicas, n = clocks.shape
        flat = (np.arange(replicas)[:, None] * self.period + clocks).ravel()
        counts = np.bincount(flat, minlength=replicas * self.period).reshape(
            replicas, self.period
        )
        return float((counts.max(axis=1) / n).mean())
