"""Run records: what an engine execution produces.

Kept separate from the engine so that experiment code can build and serialize
results without importing simulation machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RoundRecord", "RunResult"]


@dataclass(frozen=True)
class RoundRecord:
    """Summary of a single synchronous round.

    ``x_before``/``x_after`` are the global one-fractions before and after the
    round; ``flips`` counts agents whose opinion changed.
    """

    round_index: int
    x_before: float
    x_after: float
    flips: int


@dataclass
class RunResult:
    """Outcome of a full engine run.

    Attributes
    ----------
    converged:
        ``True`` when the population reached the correct consensus and held it
        for the engine's stability window before ``max_rounds`` elapsed.
    rounds:
        Number of rounds executed until convergence was first detected
        (i.e. the first round index ``t_con`` at which the configuration
        reached the correct consensus and then stayed), or ``max_rounds``
        when the run did not converge.
    trajectory:
        ``x_t`` for every observed round, *including* the initial fraction;
        ``trajectory[t]`` is the one-fraction at the start of round ``t``.
    flips:
        Per-round count of agents that changed opinion (parallel to rounds
        executed). Empty when flip recording is disabled.
    """

    converged: bool
    rounds: int
    trajectory: np.ndarray
    flips: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def final_fraction(self) -> float:
        return float(self.trajectory[-1])

    def pairs(self) -> np.ndarray:
        """Return the ``(x_t, x_{t+1})`` pairs of the trajectory.

        This is the state of the Markov chain the paper analyzes on the grid
        ``G`` (Section 2); used by domain classification and the Figure 1b
        transition experiment.
        """
        xs = self.trajectory
        if xs.size < 2:
            return np.zeros((0, 2))
        return np.stack([xs[:-1], xs[1:]], axis=1)

    def summary(self) -> dict:
        return {
            "converged": self.converged,
            "rounds": self.rounds,
            "final_fraction": self.final_fraction,
        }
