"""Seeded random-number-generator service.

All stochastic components in the library draw from :class:`numpy.random.Generator`
instances created here. Experiments that run many independent trials use
:func:`spawn_rngs` so that every trial gets a statistically independent stream
derived from a single user-supplied seed, which makes every experiment in the
repository exactly reproducible from one integer.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "derive_rng", "as_rng"]


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a new generator from ``seed``.

    ``None`` draws entropy from the OS; experiments should always pass an
    explicit integer so that results are reproducible.
    """
    return np.random.default_rng(seed)


def as_rng(seed_or_rng: int | None | np.random.Generator) -> np.random.Generator:
    """Coerce an integer seed, ``None``, or an existing generator into a generator.

    Passing an existing generator returns it unchanged (no reseeding), which
    lets every public API accept either form.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return make_rng(seed_or_rng)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single integer seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so the streams are
    independent by construction (distinct spawn keys), not merely seeded with
    ``seed + i``.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


def derive_rng(seed: int, *keys: int) -> np.random.Generator:
    """Derive a generator from a seed plus a tuple of integer sub-keys.

    Useful for addressing a specific cell of a parameter sweep, e.g.
    ``derive_rng(base_seed, n_index, trial_index)``; distinct key tuples give
    independent streams.
    """
    return np.random.default_rng(np.random.SeedSequence((seed, *keys)))


def interleave_seeds(seed: int, labels: Sequence[str] | Iterable[str]) -> dict[str, np.random.Generator]:
    """Map string labels to independent generators derived from ``seed``.

    The mapping is stable in the order of ``labels``: the i-th label receives
    the i-th spawned stream.
    """
    labels = list(labels)
    rngs = spawn_rngs(seed, len(labels))
    return dict(zip(labels, rngs))
