"""Observation-noise extension: faulty passive observations.

The paper's biological motivation (animals scanning each other at a
distance) makes perception errors natural, and its bibliography studies
rumor spreading under message corruption (Feinerman et al. 2017, Boczkowski
et al. 2018a). This extension models the simplest such fault: every observed
opinion bit is independently flipped with probability ``epsilon``.

Under uniform-with-replacement sampling, a flipped observation of a
population with one-fraction ``x`` reads 1 with probability
``x(1−ε) + (1−x)ε``, so the noisy count is exactly
``Binomial(ℓ, x + ε(1−2x))`` — implemented by perturbing the effective
fraction, which keeps the O(n)-per-round fast path.

The robustness benchmark (E-noise) maps how much noise FET tolerates. The
noise is unbiased (it shrinks the drift by (1−2ε) without biasing it), so
FET still *reaches* near-consensus quickly — but it cannot *retain* it:
exact unanimity is the only configuration where every comparison ties, so
it is a knife-edge. A single noisy observation reads as a downward trend,
the trend rule amplifies it, and the population falls into sustained
oscillations for any ε > 0 (measured down to ε = 1e-5). See
:mod:`repro.experiments.robustness` for the reach-vs-retain split.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .population import PopulationState
from .sampling import BatchedBinomialSampler, Sampler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .batch import BatchedPopulation

__all__ = ["NoisyCountSampler", "BatchedNoisyCountSampler", "noisy_fraction"]


def noisy_fraction(x: float, epsilon: float) -> float:
    """Effective one-fraction seen through per-bit flip noise ε."""
    if not 0.0 <= epsilon <= 0.5:
        raise ValueError(f"epsilon must be in [0, 1/2], got {epsilon}")
    return x + epsilon * (1.0 - 2.0 * x)


class NoisyCountSampler(Sampler):
    """Fast sampler whose every observed bit flips independently w.p. ε.

    Exact in distribution for the flip-noise model (see module docstring).
    ``epsilon = 0`` reduces to the noiseless fast sampler.
    """

    def __init__(self, epsilon: float) -> None:
        if not 0.0 <= epsilon <= 0.5:
            raise ValueError(f"epsilon must be in [0, 1/2], got {epsilon}")
        self.epsilon = epsilon

    def counts(
        self,
        population: PopulationState,
        ell: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if ell < 0:
            raise ValueError(f"ell must be non-negative, got {ell}")
        x = noisy_fraction(population.fraction_ones(), self.epsilon)
        return rng.binomial(ell, x, size=population.n)

    def count_blocks(
        self,
        population: PopulationState,
        ell: int,
        blocks: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if ell < 0:
            raise ValueError(f"ell must be non-negative, got {ell}")
        x = noisy_fraction(population.fraction_ones(), self.epsilon)
        return rng.binomial(ell, x, size=(blocks, population.n))


class BatchedNoisyCountSampler(BatchedBinomialSampler):
    """Batched fast sampler with per-bit flip noise ε (see module docstring).

    Lets the robustness sweeps (E-noise) run on the batched engine: the noise
    model only perturbs each replica's effective one-fraction, so the batched
    fast path is preserved.
    """

    def __init__(self, epsilon: float, method: str = "auto") -> None:
        super().__init__(method)
        if not 0.0 <= epsilon <= 0.5:
            raise ValueError(f"epsilon must be in [0, 1/2], got {epsilon}")
        self.epsilon = epsilon

    def _fractions(self, batch: "BatchedPopulation") -> np.ndarray:
        x = batch.fraction_ones()
        return x + self.epsilon * (1.0 - 2.0 * x)

    def scalar(self) -> Sampler:
        return NoisyCountSampler(self.epsilon)
