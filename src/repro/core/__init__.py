"""Core substrate: population, sampling, protocol interface, round engine."""

from .engine import SynchronousEngine, run_protocol
from .noise import NoisyCountSampler, noisy_fraction
from .population import PopulationState, make_majority_population, make_population
from .protocol import Protocol, ProtocolState
from .records import RoundRecord, RunResult
from .rng import as_rng, derive_rng, make_rng, spawn_rngs
from .sampling import BinomialCountSampler, IndexSampler, Sampler

__all__ = [
    "BinomialCountSampler",
    "IndexSampler",
    "NoisyCountSampler",
    "PopulationState",
    "Protocol",
    "ProtocolState",
    "RoundRecord",
    "RunResult",
    "Sampler",
    "SynchronousEngine",
    "as_rng",
    "derive_rng",
    "make_majority_population",
    "make_population",
    "make_rng",
    "noisy_fraction",
    "run_protocol",
    "spawn_rngs",
]
