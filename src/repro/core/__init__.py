"""Core substrate: population, sampling, protocol interface, round engines.

Performance architecture
------------------------
The hot path of every aggregate experiment is *many independent trials of one
configuration*. Two layers keep it fast:

1. **Exact count-level sampling.** Under uniform-with-replacement ``PULL``
   sampling, an agent's observation is fully summarized by its 1-count, which
   is exactly ``Binomial(ℓ, x_t)`` — so a round needs one binomial tensor, not
   ``n·ℓ`` materialized samples (:class:`BinomialCountSampler`).
2. **Batched replicas.** Because that count depends on the population only
   through ``x_t``, R replicas advance in lock-step as a single ``(R, n)``
   matrix (:mod:`repro.core.batch`): per-replica one-fractions key one
   :class:`BatchedBinomialSampler` call per round, vectorized protocols
   (``Protocol.batch_vectorized``) step every replica with a handful of numpy
   ops, and converged replicas retire from a compacted working set so finished
   trials stop costing work. The sampler tiers its draw strategy by where
   each replica's ``x`` sits (deterministic fills at consensus, geometric-gap
   sparse placement near consensus, numpy's scalar-p generator near the
   ends, shared-CDF inversion in the middle), so the draws themselves — not
   just the Python overhead — get cheaper than a per-trial loop.

The batched fast path covers memoryless-*sampling* protocols (observation =
1-count, everything whose scalar ``step`` consumes ``sampler.counts`` /
``count_blocks``) *and* the identity-sampling clock-sync baseline, whose
per-agent plurality vote vectorizes as one flat bincount over (replica,
agent, clock) keys. Identity draws have no count-level sufficient statistic,
so that protocol's batched win is uniformity (no per-replica Python
fallback, trace/retirement integration), not a draw-cost reduction.
Per-round trajectory and flip logs are served on *both* engines by the trace
subsystem (:mod:`repro.trace`): a recorder hooks the round loop and keeps
per-replica curves across retirement, so trajectory-shaped consumers ride
the batched path too.

A third layer sits above both: one ``(R, n)`` batch saturates a single core,
so **sweep cells** — independent (protocol, n, noise, initializer) grid
points — fan out over worker *processes* through the sweep orchestrator
(:mod:`repro.sweep`), each cell running this batched engine under its own
deterministically derived seed. Vectorization scales within a cell, the
process pool scales across cells.
"""

from .batch import (
    BatchedEngine,
    BatchedPopulation,
    BatchRunResult,
    run_protocol_batched,
    stack_states,
)
from .engine import SynchronousEngine, run_protocol
from .noise import BatchedNoisyCountSampler, NoisyCountSampler, noisy_fraction
from .population import PopulationState, make_majority_population, make_population
from .protocol import Protocol, ProtocolState
from .records import RoundRecord, RunResult
from .rng import as_rng, derive_rng, make_rng, spawn_rngs
from .sampling import (
    BatchedBinomialSampler,
    BatchedSampler,
    BinomialCountSampler,
    IndexSampler,
    Sampler,
    batched_binomial_counts,
)

__all__ = [
    "BatchRunResult",
    "BatchedBinomialSampler",
    "BatchedEngine",
    "BatchedNoisyCountSampler",
    "BatchedPopulation",
    "BatchedSampler",
    "BinomialCountSampler",
    "IndexSampler",
    "NoisyCountSampler",
    "PopulationState",
    "Protocol",
    "ProtocolState",
    "RoundRecord",
    "RunResult",
    "Sampler",
    "SynchronousEngine",
    "as_rng",
    "batched_binomial_counts",
    "derive_rng",
    "make_majority_population",
    "make_population",
    "make_rng",
    "noisy_fraction",
    "run_protocol",
    "run_protocol_batched",
    "spawn_rngs",
    "stack_states",
]
