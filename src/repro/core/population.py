"""Population state for the self-stabilizing bit-dissemination problem.

The model (paper, Section 1.2): a fully-connected network of ``n`` agents,
each holding a public binary opinion. One designated *source* agent knows the
correct opinion, adopts it, and never deviates. Non-source agents must
converge on the correct opinion from an arbitrary initial configuration.

:class:`PopulationState` stores the opinion vector and the source structure.
It also supports the generalized *majority bit-dissemination* setting of
Section 1.2 (``k ≥ 1`` sources, each with its own preference bit), which is
used by the impossibility experiment (E-imposs in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PopulationState", "make_population", "make_majority_population"]


@dataclass
class PopulationState:
    """Opinions plus source structure of a population.

    Attributes
    ----------
    opinions:
        ``uint8`` array of shape ``(n,)`` with values in ``{0, 1}``. This is
        the *public output* of every agent — under passive communication it is
        the only observable information.
    source_mask:
        Boolean array of shape ``(n,)``; ``True`` marks source agents.
    source_preferences:
        ``uint8`` array of shape ``(n,)``; meaningful only where
        ``source_mask`` is ``True``. In the single-source problem every source
        preference equals ``correct_opinion``.
    correct_opinion:
        The bit the population must converge on. In the majority variant this
        is the preference shared by the (strict) majority of sources.
    """

    opinions: np.ndarray
    source_mask: np.ndarray
    source_preferences: np.ndarray
    correct_opinion: int
    pin_each_round: bool = True

    def __post_init__(self) -> None:
        self.opinions = np.asarray(self.opinions, dtype=np.uint8)
        self.source_mask = np.asarray(self.source_mask, dtype=bool)
        self.source_preferences = np.asarray(self.source_preferences, dtype=np.uint8)
        n = self.opinions.shape[0]
        if self.source_mask.shape != (n,) or self.source_preferences.shape != (n,):
            raise ValueError("opinions, source_mask and source_preferences must share shape (n,)")
        if n < 2:
            raise ValueError(f"population needs at least 2 agents, got {n}")
        if self.correct_opinion not in (0, 1):
            raise ValueError(f"correct_opinion must be 0 or 1, got {self.correct_opinion}")
        if not self.source_mask.any():
            raise ValueError("population must contain at least one source agent")
        if not np.isin(self.opinions, (0, 1)).all():
            raise ValueError("opinions must be 0/1 valued")
        # One-count cache: ``fraction_ones`` is consulted several times per
        # round (engine bookkeeping before/after the step, plus the binomial
        # sampler keying on x_t), each a full reduction over ``opinions``.
        # Every mutating method invalidates it; callers that write into
        # ``opinions`` directly must call :meth:`invalidate_cache`.
        self._ones_count: int | None = None

    # ------------------------------------------------------------------ views

    @property
    def n(self) -> int:
        """Total number of agents (sources included)."""
        return int(self.opinions.shape[0])

    @property
    def num_sources(self) -> int:
        return int(self.source_mask.sum())

    @property
    def nonsource_mask(self) -> np.ndarray:
        return ~self.source_mask

    def fraction_ones(self) -> float:
        """``x_t``: the fraction of agents (sources included) with opinion 1."""
        return self.count_ones() / self.n

    def count_ones(self) -> int:
        if self._ones_count is None:
            self._ones_count = int(self.opinions.sum())
        return self._ones_count

    def invalidate_cache(self) -> None:
        """Drop the cached one-count after a direct write into ``opinions``."""
        self._ones_count = None

    # -------------------------------------------------------------- mutation

    def set_opinions(self, new_opinions: np.ndarray) -> None:
        """Replace all opinions, then re-pin sources to their preference.

        Protocols compute tentative opinions for everyone; the population
        enforces the model invariant that a source always outputs its
        preference (for the single-source problem, the correct opinion). This
        mirrors the paper's assumption that the source "adopts the correct
        opinion and remains with it throughout the execution".
        """
        new_opinions = np.asarray(new_opinions, dtype=np.uint8)
        if new_opinions.shape != self.opinions.shape:
            raise ValueError("opinion vector shape mismatch")
        self.opinions = new_opinions
        self.invalidate_cache()
        if self.pin_each_round:
            self.pin_sources()

    def pin_sources(self) -> None:
        """Force every source agent's opinion to its preference bit."""
        self.opinions[self.source_mask] = self.source_preferences[self.source_mask]
        self.invalidate_cache()

    def adversarial_opinions(
        self, opinions: np.ndarray, *, pin_sources: bool = True, validate: bool = True
    ) -> None:
        """Install an adversarial opinion configuration.

        By default sources are re-pinned (the adversary "may initially set a
        different opinion to the source, but then the value of the correct bit
        would change" — we model this by keeping the correct bit fixed and
        pinning). Passing ``pin_sources=False`` reproduces the impossibility
        construction of Section 1.2, in which the adversary also controls the
        opinions that conflicted sources publicly display.

        ``validate=False`` skips the O(n) 0/1 check — for initializers whose
        vectors are 0/1 by construction, where the check would otherwise
        dominate many-trial setup.
        """
        opinions = np.asarray(opinions, dtype=np.uint8)
        if opinions.shape != self.opinions.shape:
            raise ValueError("opinion vector shape mismatch")
        if validate and not np.isin(opinions, (0, 1)).all():
            raise ValueError("opinions must be 0/1 valued")
        self.opinions = opinions.copy()
        self.invalidate_cache()
        if pin_sources:
            self.pin_sources()

    # ------------------------------------------------------------ predicates

    def at_consensus(self) -> bool:
        """True when every agent outputs the same opinion."""
        first = self.opinions[0]
        return bool((self.opinions == first).all())

    def at_correct_consensus(self) -> bool:
        """True when every agent outputs the correct opinion."""
        return bool((self.opinions == self.correct_opinion).all())

    def nonsource_correct_fraction(self) -> float:
        """Fraction of non-source agents currently holding the correct opinion."""
        nonsource = self.opinions[self.nonsource_mask]
        if nonsource.size == 0:
            return 1.0
        return float((nonsource == self.correct_opinion).mean())

    def copy(self) -> "PopulationState":
        # Valid by construction — skip __post_init__'s O(n) re-validation,
        # which matters when a harness copies one template per trial.
        new = object.__new__(PopulationState)
        new.opinions = self.opinions.copy()
        new.source_mask = self.source_mask.copy()
        new.source_preferences = self.source_preferences.copy()
        new.correct_opinion = self.correct_opinion
        new.pin_each_round = self.pin_each_round
        new._ones_count = self._ones_count
        return new


def make_population(
    n: int,
    correct_opinion: int = 1,
    *,
    num_sources: int = 1,
    source_indices: np.ndarray | list[int] | None = None,
) -> PopulationState:
    """Build a single-preference population (the paper's standard setting).

    All sources share ``correct_opinion`` as their preference. Source agents
    are placed at ``source_indices`` if given, otherwise at indices
    ``0 .. num_sources-1`` (agent identity is irrelevant in a fully-connected
    anonymous population).

    Non-source opinions start at the *wrong* opinion; callers normally
    overwrite them with an initializer before running.
    """
    if correct_opinion not in (0, 1):
        raise ValueError(f"correct_opinion must be 0 or 1, got {correct_opinion}")
    if source_indices is None:
        if not 1 <= num_sources < n:
            raise ValueError(f"num_sources must be in [1, n), got {num_sources}")
        source_indices = np.arange(num_sources)
    source_mask = np.zeros(n, dtype=bool)
    source_mask[np.asarray(source_indices, dtype=int)] = True
    preferences = np.full(n, correct_opinion, dtype=np.uint8)
    opinions = np.full(n, 1 - correct_opinion, dtype=np.uint8)
    opinions[source_mask] = correct_opinion
    return PopulationState(
        opinions=opinions,
        source_mask=source_mask,
        source_preferences=preferences,
        correct_opinion=correct_opinion,
    )


def make_majority_population(
    n: int,
    k0: int,
    k1: int,
) -> PopulationState:
    """Build a population for the *majority* bit-dissemination variant.

    ``k0`` sources prefer 0 and ``k1`` sources prefer 1; the correct bit is
    the strict-majority preference. Used only by the impossibility experiment
    (paper Section 1.2) — the paper proves this variant is unsolvable in
    poly-log time under passive communication.
    """
    if k0 + k1 >= n:
        raise ValueError("too many sources for the population size")
    if k0 == k1:
        raise ValueError("majority variant requires a strict majority preference")
    if min(k0, k1) < 0 or max(k0, k1) == 0:
        raise ValueError("need non-negative counts with at least one source")
    correct = 1 if k1 > k0 else 0
    source_mask = np.zeros(n, dtype=bool)
    source_mask[: k0 + k1] = True
    preferences = np.zeros(n, dtype=np.uint8)
    preferences[:k0] = 0
    preferences[k0 : k0 + k1] = 1
    opinions = preferences.copy()
    return PopulationState(
        opinions=opinions,
        source_mask=source_mask,
        source_preferences=preferences,
        correct_opinion=correct,
        # In the majority variant every agent — sources included — must
        # eventually converge on the majority preference, so sources are not
        # pinned each round; they participate in the dynamics.
        pin_each_round=False,
    )
