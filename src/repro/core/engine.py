"""Synchronous round engine.

Drives a :class:`~repro.core.protocol.Protocol` over a
:class:`~repro.core.population.PopulationState` in synchronous rounds, exactly
as in the paper's model: every agent simultaneously observes, updates its
internal state, and publishes its next opinion. Detects convergence to the
correct consensus and (for self-stabilizing protocols such as FET) verifies a
stability window so that the reported time matches the paper's ``t_con`` — the
first round after which the configuration "remained unchanged forever after".

For FET specifically, two consecutive all-correct rounds are provably
absorbing: with ``x_t = x_{t+1} = 1`` every sampled block is all ones, both
counters equal ℓ, and the tie rule keeps every opinion. The default stability
window of 2 therefore makes the detection exact rather than heuristic.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..telemetry.registry import current_registry
from ..telemetry.spans import span
from .population import PopulationState
from .protocol import Protocol, ProtocolState
from .records import RoundRecord, RunResult
from .rng import as_rng
from .sampling import BinomialCountSampler, Sampler

if TYPE_CHECKING:  # pragma: no cover - typing only; trace layers on core
    from ..trace.recorder import TraceRecorder

__all__ = ["SynchronousEngine", "run_protocol"]


class SynchronousEngine:
    """Stateful simulation driver.

    Parameters
    ----------
    protocol:
        The update rule to execute.
    population:
        The population to mutate in place.
    sampler:
        PULL sampler; defaults to the fast exact-in-distribution
        :class:`BinomialCountSampler`.
    rng:
        Generator or integer seed for all stochastic choices.
    state:
        Pre-built internal protocol state (e.g. adversarial); defaults to the
        protocol's clean initial state.
    """

    def __init__(
        self,
        protocol: Protocol,
        population: PopulationState,
        *,
        sampler: Sampler | None = None,
        rng: int | np.random.Generator | None = None,
        state: ProtocolState | None = None,
    ) -> None:
        self.protocol = protocol
        self.population = population
        self.sampler = sampler if sampler is not None else BinomialCountSampler()
        self.rng = as_rng(rng)
        self.state = state if state is not None else protocol.init_state(population.n, self.rng)
        self.round_index = 0
        # The engine pins sources once up-front so that a sloppy caller cannot
        # start a single-source run with a deviating source opinion.
        if population.pin_each_round:
            population.pin_sources()

    def step(self) -> RoundRecord:
        """Run one synchronous round and return its summary.

        Flips are counted against the *published* opinion vectors, i.e. after
        sources are re-pinned: a source whose tentative opinion deviated but
        was pinned straight back never changed its public output.
        """
        x_before = self.population.fraction_ones()
        old = self.population.opinions
        new = self.protocol.step(self.population, self.state, self.sampler, self.rng)
        self.population.set_opinions(new)
        flips = int(np.count_nonzero(self.population.opinions != old))
        record = RoundRecord(
            round_index=self.round_index,
            x_before=x_before,
            x_after=self.population.fraction_ones(),
            flips=flips,
        )
        self.round_index += 1
        return record

    def run(
        self,
        max_rounds: int,
        *,
        stability_rounds: int = 2,
        record_flips: bool = False,
        stop_condition: Callable[[PopulationState], bool] | None = None,
        recorder: "TraceRecorder | None" = None,
    ) -> RunResult:
        """Run until convergence (correct consensus held for
        ``stability_rounds`` consecutive observations) or ``max_rounds``.

        ``stop_condition`` optionally replaces the correct-consensus test,
        e.g. for experiments that stop on *any* consensus (baseline dynamics).

        ``recorder`` optionally mirrors the run into the trace subsystem as a
        one-replica batch — the same :class:`~repro.trace.recorder.BatchTrace`
        shape the batched engine produces, which is what the
        batched-vs-sequential trace cross-checks compare.
        """
        with span("engine.run", engine="sequential"):
            return self._run(
                max_rounds,
                stability_rounds=stability_rounds,
                record_flips=record_flips,
                stop_condition=stop_condition,
                recorder=recorder,
            )

    def _run(
        self,
        max_rounds: int,
        *,
        stability_rounds: int,
        record_flips: bool,
        stop_condition: Callable[[PopulationState], bool] | None,
        recorder: "TraceRecorder | None",
    ) -> RunResult:
        if max_rounds < 0:
            raise ValueError(f"max_rounds must be non-negative, got {max_rounds}")
        if stability_rounds < 1:
            raise ValueError(f"stability_rounds must be >= 1, got {stability_rounds}")
        condition = stop_condition or PopulationState.at_correct_consensus
        metrics = current_registry()
        run_start = time.perf_counter() if metrics is not None else 0.0
        trajectory = [self.population.fraction_ones()]
        flip_log: list[int] = []
        wants_flips = recorder is not None and getattr(recorder, "record_flips", False)
        if recorder is not None:
            population = self.population
            prefs = population.source_preferences[population.source_mask]
            recorder.bind(
                replicas=1,
                n=population.n,
                num_sources=int(population.source_mask.sum()),
                sources_correct=int((prefs == population.correct_opinion).sum()),
                correct_opinion=population.correct_opinion,
                pin_each_round=population.pin_each_round,
            )
            recorder.on_round(
                0,
                np.array([trajectory[0]], dtype=float),
                np.zeros(1, dtype=np.int64) if wants_flips else None,
            )
        streak = 1 if condition(self.population) else 0
        first_hit = 0 if streak else -1
        converged = streak >= stability_rounds
        rounds_done = 0
        while rounds_done < max_rounds and not converged:
            record = self.step()
            rounds_done += 1
            trajectory.append(record.x_after)
            if record_flips:
                flip_log.append(record.flips)
            if recorder is not None:
                recorder.on_round(
                    rounds_done,
                    np.array([record.x_after], dtype=float),
                    np.array([record.flips], dtype=np.int64) if wants_flips else None,
                )
            if condition(self.population):
                if streak == 0:
                    first_hit = rounds_done
                streak += 1
            else:
                streak = 0
                first_hit = -1
            converged = streak >= stability_rounds
        if metrics is not None:
            metrics.counter(
                "repro_engine_rounds_total",
                "Lock-step synchronous rounds executed, by engine.",
                engine="sequential",
            ).inc(rounds_done)
            metrics.histogram(
                "repro_engine_run_seconds",
                "Wall-clock seconds per engine run() call, by engine.",
                engine="sequential",
            ).observe(time.perf_counter() - run_start)
        return RunResult(
            converged=converged,
            rounds=first_hit if converged else rounds_done,
            trajectory=np.asarray(trajectory, dtype=float),
            flips=np.asarray(flip_log, dtype=np.int64),
        )


def run_protocol(
    protocol: Protocol,
    population: PopulationState,
    max_rounds: int,
    *,
    sampler: Sampler | None = None,
    rng: int | np.random.Generator | None = None,
    state: ProtocolState | None = None,
    stability_rounds: int = 2,
    record_flips: bool = False,
) -> RunResult:
    """One-shot convenience wrapper around :class:`SynchronousEngine`."""
    engine = SynchronousEngine(
        protocol,
        population,
        sampler=sampler,
        rng=rng,
        state=state,
    )
    return engine.run(
        max_rounds,
        stability_rounds=stability_rounds,
        record_flips=record_flips,
    )
