"""Sufficient-statistic simulation: R replicas as ``(R, num_states)`` counts.

Every batch-vectorized protocol in this repository observes the population
only through its one-fraction, and per-agent state lives in a small finite
set — so an exchangeable replica is fully described by its *state-count
vector*, not an ``(R, n)`` opinion matrix. This module is the third engine
built on that observation:

* :class:`CountPopulation` holds the ``(R, S)`` matrix of non-source state
  counts (``S = protocol.count_states()``), the shared source structure, and
  the per-state displayed opinions — enough to answer every question the
  engine contract asks (one-fractions, consensus predicates, non-source
  correct fraction) in O(S) per replica;
* :class:`CountEngine` drives it with the exact semantics of
  :class:`~repro.core.batch.BatchedEngine.run`: per-replica stability
  windows, ``t_con`` accounting, retirement with a compact working set,
  ``linger_rounds`` settle windows, and the ``recorder=`` hook emitting
  per-round one-fractions — so traces and measures work unchanged.

Per-round memory and compute are O(S) per replica, independent of ``n``:
stepping draws per-state observation-count distributions multinomially
(:meth:`~repro.core.protocol.Protocol.step_counts`), maps them through the
decision rule, and re-aggregates — no per-agent arrays anywhere. That turns
n = 10^6–10^8 populations into routine sweep cells.

What the counts path cannot express (and rejects with clear errors):

* per-agent observation models — the literal index sampler materializes
  sampled identities, which do not exist here; the engine consumes the
  observation model through the
  :meth:`~repro.core.sampling.BatchedBinomialSampler.effective_fractions`
  seam alone (noise included);
* crafted per-agent configurations — adversarial initializers that place
  specific agents in specific states declare ``supports_counts = False``;
* per-replica flip counts — which agents flipped is not a function of the
  sufficient statistic, so recorders with ``record_flips=True`` are
  rejected.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..telemetry.registry import current_registry
from ..telemetry.spans import span
from .batch import BatchRunResult
from .protocol import Protocol
from .rng import as_rng
from .sampling import BatchedBinomialSampler

if TYPE_CHECKING:  # pragma: no cover - typing only; trace layers on core
    from ..trace.recorder import TraceRecorder

__all__ = [
    "CountPopulation",
    "CountEngine",
    "make_count_population",
]


class CountPopulation:
    """R replicas of one population as a single ``(R, S)`` state-count matrix.

    ``counts[r, s]`` is the number of *non-source* agents of replica ``r``
    in count state ``s``; ``display[s]`` is the opinion bit an agent in state
    ``s`` shows. Sources are not tracked per state: in the canonical layout
    (every source prefers ``correct_opinion`` and is re-pinned each round)
    their displayed opinion is always ``correct_opinion`` and their internal
    state never influences the dynamics, so they contribute a constant to
    every one-count.

    All replicas share the source structure; each row is an independent
    count vector. The per-replica one-counts are cached exactly like
    :class:`~repro.core.batch.BatchedPopulation` caches its counts; callers
    that write into ``counts`` directly must call :meth:`invalidate_cache`.
    """

    def __init__(
        self,
        counts: np.ndarray,
        display: np.ndarray,
        *,
        n: int,
        num_sources: int = 1,
        correct_opinion: int = 1,
    ) -> None:
        self.counts = np.asarray(counts, dtype=np.int64)
        self.display = np.asarray(display, dtype=np.uint8)
        self._n = int(n)
        self._num_sources = int(num_sources)
        self.correct_opinion = int(correct_opinion)
        if self.counts.ndim != 2:
            raise ValueError(f"counts must have shape (R, S), got {self.counts.shape}")
        replicas, states = self.counts.shape
        if replicas < 1:
            raise ValueError("count population needs at least one replica")
        if states < 1:
            raise ValueError("count population needs at least one state")
        if self.display.shape != (states,):
            raise ValueError(
                f"display must have shape ({states},), got {self.display.shape}"
            )
        if not np.isin(self.display, (0, 1)).all():
            raise ValueError("display must be 0/1 valued")
        if self._n < 2:
            raise ValueError(f"population needs at least 2 agents, got {self._n}")
        if self.correct_opinion not in (0, 1):
            raise ValueError(f"correct_opinion must be 0 or 1, got {self.correct_opinion}")
        if not 1 <= self._num_sources < self._n:
            raise ValueError(
                f"num_sources must be in [1, n), got {self._num_sources} with n={self._n}"
            )
        if (self.counts < 0).any():
            raise ValueError("state counts must be non-negative")
        if not (self.counts.sum(axis=1) == self.n_free).all():
            raise ValueError(
                f"every replica's state counts must sum to n - num_sources = {self.n_free}"
            )
        self._ones_count: np.ndarray | None = None

    @classmethod
    def _trusted(
        cls,
        counts: np.ndarray,
        display: np.ndarray,
        n: int,
        num_sources: int,
        correct_opinion: int,
    ) -> "CountPopulation":
        """Wrap arrays known to satisfy the invariants, skipping validation —
        for internal hot paths (row selection, engine write-back)."""
        pop = object.__new__(cls)
        pop.counts = counts
        pop.display = display
        pop._n = n
        pop._num_sources = num_sources
        pop.correct_opinion = correct_opinion
        pop._ones_count = None
        return pop

    # ------------------------------------------------------------------ views

    @property
    def replicas(self) -> int:
        return int(self.counts.shape[0])

    @property
    def num_states(self) -> int:
        return int(self.counts.shape[1])

    @property
    def n(self) -> int:
        return self._n

    @property
    def num_sources(self) -> int:
        return self._num_sources

    @property
    def n_free(self) -> int:
        """Non-source agents per replica — what each count row sums to."""
        return self._n - self._num_sources

    @property
    def sources_ones(self) -> int:
        """1-opinions contributed by the (pinned, agreeing) sources."""
        return self._num_sources if self.correct_opinion == 1 else 0

    def count_ones(self) -> np.ndarray:
        """Per-replica number of 1-opinions (sources included), shape ``(R,)``."""
        if self._ones_count is None:
            ones_mass = self.counts @ (self.display == 1).astype(np.int64)
            self._ones_count = ones_mass + self.sources_ones
        return self._ones_count

    def fraction_ones(self) -> np.ndarray:
        """Per-replica ``x_t``, shape ``(R,)``."""
        return self.count_ones() / self._n

    def invalidate_cache(self) -> None:
        """Drop the cached one-counts after a direct write into ``counts``."""
        self._ones_count = None

    # -------------------------------------------------------------- mutation

    def set_counts(self, new_counts: np.ndarray) -> None:
        """Replace all rows with a stepped ``(R, S)`` count matrix."""
        new_counts = np.asarray(new_counts, dtype=np.int64)
        if new_counts.shape != self.counts.shape:
            raise ValueError("count matrix shape mismatch")
        self.counts = new_counts
        self.invalidate_cache()

    # ------------------------------------------------------------ predicates

    def at_consensus(self) -> np.ndarray:
        """Per-replica: every agent outputs the same opinion. Shape ``(R,)``."""
        ones = self.count_ones()
        return (ones == 0) | (ones == self._n)

    def at_correct_consensus(self) -> np.ndarray:
        """Per-replica: every agent outputs the correct opinion. Shape ``(R,)``."""
        ones = self.count_ones()
        return ones == self._n if self.correct_opinion == 1 else ones == 0

    def nonsource_correct_fraction(self) -> np.ndarray:
        """Per-replica fraction of non-source agents on the correct opinion."""
        correct_mass = self.counts @ (self.display == self.correct_opinion).astype(np.int64)
        return correct_mass / self.n_free

    # ----------------------------------------------------------------- misc

    def select(self, rows: np.ndarray) -> "CountPopulation":
        """New population holding only ``rows`` (boolean mask or index array).

        Count rows are copied; the shared display vector is not. Used by the
        engine to compact the working set when replicas retire.
        """
        sub = CountPopulation._trusted(
            self.counts[rows],
            self.display,
            self._n,
            self._num_sources,
            self.correct_opinion,
        )
        if self._ones_count is not None:
            sub._ones_count = self._ones_count[rows]
        return sub

    def copy(self) -> "CountPopulation":
        return CountPopulation._trusted(
            self.counts.copy(),
            self.display.copy(),
            self._n,
            self._num_sources,
            self.correct_opinion,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CountPopulation(replicas={self.replicas}, n={self._n}, "
            f"num_states={self.num_states})"
        )


def make_count_population(
    protocol: Protocol,
    replicas: int,
    n: int,
    *,
    num_sources: int = 1,
    correct_opinion: int = 1,
) -> CountPopulation:
    """Clean-start count template — the counts analogue of
    :func:`~repro.core.population.make_population`.

    Every non-source agent starts in the clean-start state of the *wrong*
    opinion (callers normally overwrite with an initializer's
    ``apply_counts`` before running). Requires the protocol's clean start to
    be deterministic given the opinion (a point mass per row of
    :meth:`~repro.core.protocol.Protocol.count_init_state_pmf`), which holds
    for every protocol in this repository; a stochastic clean start would
    need an explicitly drawn count matrix instead.
    """
    if not getattr(protocol, "counts_supported", False):
        raise ValueError(
            f"protocol {protocol.name!r} does not support the counts engine "
            "(counts_supported=False)"
        )
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if correct_opinion not in (0, 1):
        raise ValueError(f"correct_opinion must be 0 or 1, got {correct_opinion}")
    if not 1 <= num_sources < n:
        raise ValueError(f"num_sources must be in [1, n), got {num_sources}")
    states = protocol.count_states()
    wrong_row = np.asarray(protocol.count_init_state_pmf(), dtype=float)[1 - correct_opinion]
    start = int(np.argmax(wrong_row))
    if wrong_row[start] != 1.0:
        raise ValueError(
            f"protocol {protocol.name!r} has a stochastic clean start; build the "
            "initial CountPopulation from explicitly drawn counts instead"
        )
    counts = np.zeros((replicas, states), dtype=np.int64)
    counts[:, start] = n - num_sources
    return CountPopulation(
        counts,
        protocol.count_display(),
        n=n,
        num_sources=num_sources,
        correct_opinion=correct_opinion,
    )


class CountEngine:
    """Lock-step driver for R count replicas with per-replica retirement.

    The counts analogue of :class:`~repro.core.batch.BatchedEngine`, meeting
    the same ``run`` contract (stability windows, ``t_con`` accounting,
    retirement, linger, ``recorder=``) so every consumer above the harness —
    traces, the θ and trace sweep measures, telemetry — works unchanged.

    Parameters
    ----------
    protocol:
        Must declare ``counts_supported = True`` and implement the count
        model (:meth:`~repro.core.protocol.Protocol.step_counts` and
        friends).
    population:
        The :class:`CountPopulation` to simulate. After :meth:`run`,
        ``population.counts`` holds every replica's final state counts
        (frozen at retirement).
    sampler:
        Observation model, consumed **only** through its
        ``effective_fractions`` seam (any
        :class:`~repro.core.sampling.BatchedBinomialSampler`-family sampler,
        noisy variants included). Defaults to the noiseless model.
        Per-agent samplers (no such seam) are rejected.
    rng:
        Generator or integer seed for the shared dynamics stream.
    """

    def __init__(
        self,
        protocol: Protocol,
        population: CountPopulation,
        *,
        sampler: BatchedBinomialSampler | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if not getattr(protocol, "counts_supported", False):
            raise ValueError(
                f"protocol {protocol.name!r} does not support the counts engine "
                "(counts_supported=False); use the batched or sequential engine"
            )
        if sampler is None:
            sampler = BatchedBinomialSampler()
        if not hasattr(sampler, "effective_fractions"):
            raise ValueError(
                f"sampler {type(sampler).__name__} has no effective_fractions seam; "
                "the counts engine draws its own multinomial transitions and only "
                "supports fraction-keyed observation models "
                "(the BatchedBinomialSampler family)"
            )
        states = protocol.count_states()
        if population.num_states != states:
            raise ValueError(
                f"population has {population.num_states} states but protocol "
                f"{protocol.name!r} defines {states}"
            )
        if not np.array_equal(population.display, protocol.count_display()):
            raise ValueError(
                f"population display vector does not match protocol {protocol.name!r}"
            )
        self.protocol = protocol
        self.population = population
        self.sampler = sampler
        self.rng = as_rng(rng)
        self.round_index = 0
        self._consumed = False

    def run(
        self,
        max_rounds: int,
        *,
        stability_rounds: int = 2,
        stop_condition: Callable[[CountPopulation], np.ndarray] | None = None,
        recorder: "TraceRecorder | None" = None,
        linger_rounds: int = 0,
    ) -> BatchRunResult:
        """Run until every replica converged (condition held for
        ``stability_rounds`` consecutive observations) or ``max_rounds``.

        Same contract as :meth:`~repro.core.batch.BatchedEngine.run` —
        ``stop_condition`` maps a :class:`CountPopulation` to an ``(A,)``
        boolean vector, ``recorder`` captures per-round one-fractions with
        retired rows frozen, ``linger_rounds`` keeps locked replicas stepping
        their settle window out (past ``max_rounds`` if needed), and the
        engine is single-shot. Recorders asking for flip counts are rejected:
        which agents flipped is not a function of the sufficient statistic.
        """
        with span("engine.run", engine="counts"):
            return self._run(
                max_rounds,
                stability_rounds=stability_rounds,
                stop_condition=stop_condition,
                recorder=recorder,
                linger_rounds=linger_rounds,
            )

    def _run(
        self,
        max_rounds: int,
        *,
        stability_rounds: int,
        stop_condition: Callable[[CountPopulation], np.ndarray] | None,
        recorder: "TraceRecorder | None",
        linger_rounds: int,
    ) -> BatchRunResult:
        if self._consumed:
            raise RuntimeError(
                "CountEngine.run is single-shot; build a fresh engine to run again"
            )
        self._consumed = True
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        if stability_rounds < 1:
            raise ValueError(f"stability_rounds must be >= 1, got {stability_rounds}")
        if linger_rounds < 0:
            raise ValueError(f"linger_rounds must be non-negative, got {linger_rounds}")
        if recorder is not None and getattr(recorder, "record_flips", False):
            raise ValueError(
                "the counts engine cannot record flips: per-agent flip counts "
                "are not a function of the state-count sufficient statistic; "
                "use engine='batched' for flip recording"
            )
        condition = stop_condition or CountPopulation.at_correct_consensus
        metrics = current_registry()
        run_start = time.perf_counter() if metrics is not None else 0.0
        draw_seconds = 0.0

        total = self.population.replicas
        converged = np.zeros(total, dtype=bool)
        rounds = np.zeros(total, dtype=np.int64)
        rounds_executed = np.zeros(total, dtype=np.int64)

        # Compact working set: only rows still running. ``ids`` maps working
        # row -> replica index in the full population.
        ids = np.arange(total)
        work = self.population.select(ids)

        if recorder is not None:
            recorder.bind(
                replicas=total,
                n=self.population.n,
                num_sources=self.population.num_sources,
                sources_correct=self.population.num_sources,
                correct_opinion=self.population.correct_opinion,
                pin_each_round=True,
            )
            # Full-batch value vector; retired rows simply stop being
            # written, which freezes them at their final values.
            current_x = work.fraction_ones().astype(float)
            recorder.on_round(0, current_x, None)

        ok = condition(work)
        streak = ok.astype(np.int64)
        first_hit = np.where(ok, 0, -1)
        locked = np.zeros(total, dtype=bool)
        locked_round = np.full(total, -1, dtype=np.int64)
        countdown = np.zeros(total, dtype=np.int64)
        rounds_done = 0

        while True:
            newly_locked = ~locked & (streak >= stability_rounds)
            if newly_locked.any():
                locked_round = np.where(newly_locked, first_hit, locked_round)
                countdown = np.where(newly_locked, linger_rounds, countdown)
                locked = locked | newly_locked
            done = locked & (countdown <= 0)
            if rounds_done >= max_rounds:
                # Budget exhausted: unconverged replicas stop here; locked
                # replicas mid-linger keep stepping their settle window out.
                done = done | ~locked
            if done.any():
                retired = ids[done]
                conv = locked[done]
                converged[retired] = conv
                rounds[retired] = np.where(conv, locked_round[done], rounds_done)
                rounds_executed[retired] = rounds_done
                self.population.counts[retired] = work.counts[done]
                keep = ~done
                ids = ids[keep]
                streak = streak[keep]
                first_hit = first_hit[keep]
                locked = locked[keep]
                locked_round = locked_round[keep]
                countdown = countdown[keep]
                if ids.size:
                    work = work.select(keep)
            if ids.size == 0:
                break
            x_eff = np.asarray(self.sampler.effective_fractions(work), dtype=float)
            draw_start = time.perf_counter() if metrics is not None else 0.0
            new_counts = self.protocol.step_counts(work.counts, x_eff, self.rng)
            if metrics is not None:
                draw_seconds += time.perf_counter() - draw_start
            work.set_counts(new_counts)
            rounds_done += 1
            self.round_index += 1
            countdown = countdown - locked
            ok = condition(work)
            # Locked replicas stop tracking the condition: their outcome was
            # sealed at detection (mirrors the batched engine exactly).
            tracking = ~locked
            newly_ok = ok & (streak == 0) & tracking
            streak = np.where(tracking, np.where(ok, streak + 1, 0), streak)
            first_hit = np.where(
                tracking,
                np.where(ok, np.where(newly_ok, rounds_done, first_hit), -1),
                first_hit,
            )
            if recorder is not None:
                current_x[ids] = work.fraction_ones()
                recorder.on_round(rounds_done, current_x, None)

        self.population.invalidate_cache()
        if metrics is not None:
            metrics.counter(
                "repro_engine_rounds_total",
                "Lock-step synchronous rounds executed, by engine.",
                engine="counts",
            ).inc(rounds_done)
            metrics.counter(
                "repro_engine_replicas_retired_total",
                "Replicas that left the batched working set (converged, "
                "lingered out, or budget-exhausted).",
            ).inc(total)
            metrics.histogram(
                "repro_engine_run_seconds",
                "Wall-clock seconds per engine run() call, by engine.",
                engine="counts",
            ).observe(time.perf_counter() - run_start)
            metrics.histogram(
                "repro_counts_draw_seconds",
                "Wall-clock seconds spent in count-level multinomial "
                "transitions (step_counts) per counts-engine run.",
            ).observe(draw_seconds)
        return BatchRunResult(
            converged=converged,
            rounds=rounds,
            rounds_executed=rounds_executed,
            final_fractions=self.population.fraction_ones(),
        )
