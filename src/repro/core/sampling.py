"""PULL-model sampling substrate.

In the paper's ``PULL`` model each agent observes the opinions of ``ℓ`` agents
chosen uniformly at random *with replacement* each round. Under passive
communication the only extractable information is the opinion bit, so an
observation is fully summarized by *the number of 1-opinions among the ℓ
samples* (paper, Section 1.2).

Two interchangeable samplers are provided:

* :class:`BinomialCountSampler` — the fast path. When sampling uniformly with
  replacement from a population whose one-fraction is ``x``, the count of ones
  among ``ℓ`` draws is exactly ``Binomial(ℓ, x)``; we draw those counts
  directly, one per agent, in O(n) per round. This is an *exact* simulation of
  the model, not an approximation.
* :class:`IndexSampler` — the literal path. Draws explicit agent indices and
  counts ones among them. Slower, but supports ``exclude_self`` (sampling "ℓ
  *other* agents") and non-passive protocols that need to read sampled agents'
  message vectors. Tests verify it agrees in distribution with the fast path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .population import PopulationState

__all__ = ["Sampler", "BinomialCountSampler", "IndexSampler"]


class Sampler(ABC):
    """Produces per-agent PULL observations from the current population."""

    @abstractmethod
    def counts(
        self,
        population: PopulationState,
        ell: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return an ``(n,)`` int array: per-agent number of 1-opinions seen
        among ``ell`` uniform-with-replacement samples."""

    def count_blocks(
        self,
        population: PopulationState,
        ell: int,
        blocks: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return an ``(blocks, n)`` int array of independent count vectors.

        FET draws ``2ℓ`` samples and partitions them into two blocks of ℓ;
        with uniform-with-replacement sampling the two block counts are
        independent ``Binomial(ℓ, x)`` variables, which is what this returns
        for ``blocks=2``.
        """
        return np.stack([self.counts(population, ell, rng) for _ in range(blocks)])

    def indices(
        self,
        population: PopulationState,
        ell: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return an ``(n, ell)`` int array of sampled agent indices.

        Only meaningful for samplers that materialize identities; the fast
        sampler raises, since passive protocols never need identities.
        """
        raise NotImplementedError(f"{type(self).__name__} does not materialize sampled indices")


class BinomialCountSampler(Sampler):
    """Exact-in-distribution fast sampler (see module docstring)."""

    def counts(
        self,
        population: PopulationState,
        ell: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if ell < 0:
            raise ValueError(f"ell must be non-negative, got {ell}")
        x = population.fraction_ones()
        return rng.binomial(ell, x, size=population.n)

    def count_blocks(
        self,
        population: PopulationState,
        ell: int,
        blocks: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if ell < 0:
            raise ValueError(f"ell must be non-negative, got {ell}")
        x = population.fraction_ones()
        return rng.binomial(ell, x, size=(blocks, population.n))


class IndexSampler(Sampler):
    """Literal index-level sampler.

    Parameters
    ----------
    exclude_self:
        When ``True``, agent ``i`` never samples itself (the paper's "ℓ
        *other* agents"). For ``ℓ ≪ n`` the difference from unrestricted
        sampling is ``O(ℓ/n)`` per observation and does not affect any result;
        the option exists so the claim can be checked rather than assumed.
    """

    def __init__(self, exclude_self: bool = False) -> None:
        self.exclude_self = exclude_self

    def indices(
        self,
        population: PopulationState,
        ell: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n = population.n
        if ell < 0:
            raise ValueError(f"ell must be non-negative, got {ell}")
        if not self.exclude_self:
            return rng.integers(0, n, size=(n, ell))
        # Sample from n-1 "other" agents: draw in [0, n-2] and shift values
        # >= own index up by one, a standard bijection onto {0..n-1} \ {i}.
        draws = rng.integers(0, n - 1, size=(n, ell))
        own = np.arange(n)[:, None]
        return draws + (draws >= own)

    def counts(
        self,
        population: PopulationState,
        ell: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        idx = self.indices(population, ell, rng)
        if idx.size == 0:
            return np.zeros(population.n, dtype=np.int64)
        return population.opinions[idx].sum(axis=1).astype(np.int64)
