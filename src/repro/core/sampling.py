"""PULL-model sampling substrate.

In the paper's ``PULL`` model each agent observes the opinions of ``ℓ`` agents
chosen uniformly at random *with replacement* each round. Under passive
communication the only extractable information is the opinion bit, so an
observation is fully summarized by *the number of 1-opinions among the ℓ
samples* (paper, Section 1.2).

Two interchangeable samplers are provided:

* :class:`BinomialCountSampler` — the fast path. When sampling uniformly with
  replacement from a population whose one-fraction is ``x``, the count of ones
  among ``ℓ`` draws is exactly ``Binomial(ℓ, x)``; we draw those counts
  directly, one per agent, in O(n) per round. This is an *exact* simulation of
  the model, not an approximation.
* :class:`IndexSampler` — the literal path. Draws explicit agent indices and
  counts ones among them. Slower, but supports ``exclude_self`` (sampling "ℓ
  *other* agents") and non-passive protocols that need to read sampled agents'
  message vectors. Tests verify it agrees in distribution with the fast path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from ..telemetry.registry import MetricsRegistry, current_registry
from ..telemetry.spans import span
from .population import PopulationState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .batch import BatchedPopulation

__all__ = [
    "Sampler",
    "BinomialCountSampler",
    "IndexSampler",
    "BatchedSampler",
    "BatchedBinomialSampler",
    "batched_binomial_counts",
]


class Sampler(ABC):
    """Produces per-agent PULL observations from the current population."""

    @abstractmethod
    def counts(
        self,
        population: PopulationState,
        ell: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return an ``(n,)`` int array: per-agent number of 1-opinions seen
        among ``ell`` uniform-with-replacement samples."""

    def count_blocks(
        self,
        population: PopulationState,
        ell: int,
        blocks: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return an ``(blocks, n)`` int array of independent count vectors.

        FET draws ``2ℓ`` samples and partitions them into two blocks of ℓ;
        with uniform-with-replacement sampling the two block counts are
        independent ``Binomial(ℓ, x)`` variables, which is what this returns
        for ``blocks=2``.
        """
        return np.stack([self.counts(population, ell, rng) for _ in range(blocks)])

    def indices(
        self,
        population: PopulationState,
        ell: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return an ``(n, ell)`` int array of sampled agent indices.

        Only meaningful for samplers that materialize identities; the fast
        sampler raises, since passive protocols never need identities.
        """
        raise NotImplementedError(f"{type(self).__name__} does not materialize sampled indices")


class BinomialCountSampler(Sampler):
    """Exact-in-distribution fast sampler (see module docstring)."""

    def counts(
        self,
        population: PopulationState,
        ell: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if ell < 0:
            raise ValueError(f"ell must be non-negative, got {ell}")
        x = population.fraction_ones()
        return rng.binomial(ell, x, size=population.n)

    def count_blocks(
        self,
        population: PopulationState,
        ell: int,
        blocks: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if ell < 0:
            raise ValueError(f"ell must be non-negative, got {ell}")
        x = population.fraction_ones()
        return rng.binomial(ell, x, size=(blocks, population.n))


class IndexSampler(Sampler):
    """Literal index-level sampler.

    Parameters
    ----------
    exclude_self:
        When ``True``, agent ``i`` never samples itself (the paper's "ℓ
        *other* agents"). For ``ℓ ≪ n`` the difference from unrestricted
        sampling is ``O(ℓ/n)`` per observation and does not affect any result;
        the option exists so the claim can be checked rather than assumed.
    """

    def __init__(self, exclude_self: bool = False) -> None:
        self.exclude_self = exclude_self

    def indices(
        self,
        population: PopulationState,
        ell: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n = population.n
        if ell < 0:
            raise ValueError(f"ell must be non-negative, got {ell}")
        if not self.exclude_self:
            return rng.integers(0, n, size=(n, ell))
        # Sample from n-1 "other" agents: draw in [0, n-2] and shift values
        # >= own index up by one, a standard bijection onto {0..n-1} \ {i}.
        draws = rng.integers(0, n - 1, size=(n, ell))
        own = np.arange(n)[:, None]
        return draws + (draws >= own)

    def counts(
        self,
        population: PopulationState,
        ell: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        idx = self.indices(population, ell, rng)
        if idx.size == 0:
            return np.zeros(population.n, dtype=np.int64)
        return population.opinions[idx].sum(axis=1).astype(np.int64)


# --------------------------------------------------------------------- batched


class BatchedSampler(ABC):
    """Per-agent PULL observations for *all replicas* of a batch at once.

    The batched analogue of :class:`Sampler`: one call produces the counts of
    every agent in every replica of a :class:`~repro.core.batch.BatchedPopulation`,
    keyed on each replica's own one-fraction.
    """

    @abstractmethod
    def counts(
        self,
        batch: "BatchedPopulation",
        ell: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return an ``(R, n)`` int array: per-agent 1-counts among ``ell``
        uniform-with-replacement samples, drawn within each replica."""

    def count_blocks(
        self,
        batch: "BatchedPopulation",
        ell: int,
        blocks: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return a ``(blocks, R, n)`` int array of independent count tensors.

        The returned tensor must be freshly allocated per call: ownership
        passes to the caller, and vectorized protocol steps may consume the
        blocks as scratch buffers on their hot path.
        """
        return np.stack([self.counts(batch, ell, rng) for _ in range(blocks)])

    @abstractmethod
    def scalar(self) -> Sampler:
        """Return the single-replica sampler with the same observation model.

        Used by the generic per-replica :meth:`Protocol.step_batch` fallback,
        which drives each replica through the protocol's scalar ``step``.
        """


#: Use numpy's scalar-p binomial generator (geometric-search inversion, cheap
#: when the distribution hugs one end) for rows with ``ℓ·min(x, 1-x)`` at or
#: below this; rows in the middle of the range go through the
#: sufficient-statistic histogram draw, whose per-draw cost is O(1)
#: regardless of x.
_INVERSION_CUTOFF = 3.0

#: Far below the inversion cutoff the draws are almost all 0 (or almost all
#: ℓ): at this tail the non-modal probability is ``1 - e^{-tail} ≈ 0.33`` or
#: less, and generating only the rare non-modal draws by geometric-gap
#: placement beats any per-element generator (the crossover vs numpy's
#: scalar-p inversion is shallow between ~0.25 and ~0.5, and the advantage
#: grows to ~10× as the tail shrinks). The cutoff sits at 0.4 rather than at
#: the nominal ~0.25 crossover because the noisy-FET hover band parks whole
#: sweeps at ``ℓ·(1-x̃) ≈ 0.3`` — with the trend rule pinning ``x̃`` just off
#: consensus, every round of every replica lands there — and routing that
#: band to the sparse path is a measured win while costing nothing in the
#: shallow-crossover region. Near-consensus rows — all-wrong openings,
#: noise-hover rounds, and linger/settle windows — sit inside this band.
_SPARSE_CUTOFF = 0.4

#: Guards against log(0) when building pmfs; distorts probabilities by less
#: than one float64 ulp, i.e. below the resolution of the draws themselves.
_TINY = 1e-300
_ALMOST_ONE = 1.0 - 1e-16


def _binomial_pmf_rows(ell: int, x_rows: np.ndarray) -> np.ndarray:
    """Row-wise ``Binomial(ℓ, x_r)`` pmfs, shape ``(rows, ℓ+1)``.

    Built in log space so extreme ``x`` cannot underflow the ``(1-x)^ℓ``
    anchor term, then normalized.
    """
    xs = np.clip(x_rows, _TINY, _ALMOST_ONE)
    k = np.arange(ell + 1, dtype=float)
    log_choose = np.concatenate(([0.0], np.cumsum(np.log((ell - k[:-1]) / (k[:-1] + 1.0)))))
    logpmf = (
        log_choose[None, :]
        + k[None, :] * np.log(xs)[:, None]
        + (ell - k)[None, :] * np.log1p(-xs)[:, None]
    )
    logpmf -= logpmf.max(axis=1, keepdims=True)
    pmf = np.exp(logpmf)
    pmf /= pmf.sum(axis=1, keepdims=True)
    return pmf


def _histogram_binomial_rows(
    rng: np.random.Generator,
    ell: int,
    x_rows: np.ndarray,
    blocks: int,
    n: int,
) -> np.ndarray:
    """``(blocks, rows, n)`` iid ``Binomial(ℓ, x_r)`` draws per row, via the
    sufficient statistic.

    Within a row all ``n`` draws share one distribution, so the *histogram*
    of the row is ``Multinomial(n, pmf)``; drawing the histogram and
    uniformly shuffling the implied multiset across the row reproduces the
    iid vector exactly (an iid sample conditioned on its histogram is a
    uniformly random arrangement). This costs O(ℓ) distribution setup per
    row plus O(1) per draw — unlike numpy's generator with a non-scalar
    ``p``, which pays its full per-draw setup for every element, and unlike
    its scalar-p inversion loop, whose per-draw cost grows with
    ``ℓ·min(x, 1-x)``.
    """
    rows = x_rows.shape[0]
    pmf = _binomial_pmf_rows(ell, x_rows)
    hist = rng.multinomial(n, np.broadcast_to(pmf, (blocks, rows, ell + 1)))
    # int32 counts: half the memory traffic of numpy's int64 draws, and every
    # downstream consumer only compares or sums them.
    values = np.repeat(
        np.tile(np.arange(ell + 1, dtype=np.int32), blocks * rows), hist.ravel()
    ).reshape(blocks * rows, n)
    rng.permuted(values, axis=1, out=values)
    return values.reshape(blocks, rows, n)


def _sparse_binomial_rows(
    rng: np.random.Generator,
    ell: int,
    x_rows: np.ndarray,
    blocks: int,
    n: int,
) -> np.ndarray:
    """``(blocks, rows, n)`` iid ``Binomial(ℓ, x_r)`` draws for extreme-x rows
    by geometric-gap placement of the rare non-modal draws.

    Within a row at small ``y = min(x, 1-x)`` almost every draw equals the
    modal count (0, or ℓ for ``x`` near 1 by the mirror ``ℓ - Binomial(ℓ,
    1-x)``). The iid vector is reproduced exactly in three steps, paying
    O(1) per *non-modal* draw instead of per element:

    1. fill the row with the modal value;
    2. walk each (block, row) lane left to right placing non-modal draws:
       a position is non-modal independently with ``q = 1 - (1-y)^ℓ``, so
       the gaps between successive non-modal positions are iid
       ``Geometric(q)`` — drawn vectorized across lanes by inverse CDF
       (``1 + ⌊ln U / ln(1-q)⌋``);
    3. give every placed position a count from the conditional distribution
       ``Binomial(ℓ, y) | ≥ 1`` (row-wise inverse CDF), mirrored back for
       flipped rows.

    Exact in distribution up to float64 rounding of ``q`` and the
    conditional pmf — the same resolution every float-p sampler has.
    """
    rows = x_rows.shape[0]
    out = np.zeros((blocks, rows, n), dtype=np.int32)
    if rows == 0 or blocks == 0 or n == 0 or ell == 0:
        return out
    flipped = x_rows > 0.5
    y = np.where(flipped, 1.0 - x_rows, x_rows)
    if flipped.any():
        out[:, flipped, :] = ell
    # P(draw is non-modal); log-space so tiny y cannot underflow. q reaches
    # exactly 1.0 when (1-y)^ell underflows — then every gap below is 1 and
    # the lane degenerates to a dense fill, which stays exact (just slow;
    # such rows only get here under a forced method="sparse").
    q = -np.expm1(ell * np.log1p(-np.minimum(y, _ALMOST_ONE)))
    lanes2d = out.reshape(blocks * rows, n)  # C-order: lane = block·rows + row
    q_lane = np.tile(q, blocks)
    with np.errstate(divide="ignore"):  # q == 1 -> log1p(-q) == -inf, handled
        log1m_q = np.log1p(-q_lane)

    positive = np.nonzero(q_lane > 0.0)[0]
    hit_lanes: list[np.ndarray] = []
    hit_pos: list[np.ndarray] = []
    first = q_lane[positive[0]] if positive.size else 0.0
    if positive.size and (q_lane[positive] == first).all():
        # Lock-step fast path — all lanes share one q (every replica at the
        # same one-fraction, e.g. identical starts or the opening rounds of
        # an all-wrong batch). The lanes concatenate into a single Bernoulli
        # line of length lanes·n (per-slot independence is q-homogeneous
        # across the seam), so one 1-d gap stream places every draw with
        # O(√K) slack instead of per-lane mean + 4σ.
        line_len = positive.size * n
        lq = float(log1m_q[positive[0]])
        line_pos = -1
        while line_pos < line_len - 1:
            expect = (line_len - 1 - line_pos) * first
            cap = int(min(np.ceil(expect + 4.0 * np.sqrt(expect) + 16.0), 8e6))
            u = rng.random(cap)
            np.maximum(u, _TINY, out=u)  # log(0) guard, < 1 ulp of distortion
            np.log(u, out=u)
            if lq != 0.0:
                u /= lq
            u += 1.0
            # Any gap beyond the line is equivalent to "no further draws";
            # clamping keeps the int64 cast finite when q is denormal-tiny
            # (ln U / ln(1-q) overflows float64) and guarantees progress.
            np.minimum(u, float(line_len) + 1.0, out=u)
            steps = u.astype(np.int64)
            np.cumsum(steps, out=steps)
            steps += line_pos
            hits = steps[steps < line_len]
            hit_lanes.append(positive[hits // n])
            hit_pos.append(hits % n)
            line_pos = int(steps[-1]) if steps.size else line_len
    else:
        active = positive
        pos = np.full(active.size, -1, dtype=np.int64)
        while active.size:
            # Enough gap draws to finish most lanes this pass (mean + 4σ),
            # bounded so a heterogeneous batch cannot allocate a huge matrix.
            expect = float(((n - pos) * q_lane[active]).max())
            cap = int(np.clip(np.ceil(expect + 4.0 * np.sqrt(expect) + 4.0), 4, 4096))
            # In-place inverse-CDF gaps, 1 + floor(ln U / ln(1-q)); the +1 is
            # folded in before truncation (the ratio is non-negative, so
            # astype truncation is the floor).
            u = rng.random((active.size, cap))
            np.maximum(u, _TINY, out=u)  # log(0) guard, < 1 ulp of distortion
            np.log(u, out=u)
            u /= log1m_q[active, None]
            u += 1.0
            # Same finite-cast/progress clamp as the lock-step path: a gap
            # past the lane end means "no further draws in this lane".
            np.minimum(u, float(n) + 1.0, out=u)
            steps = u.astype(np.int64)
            np.cumsum(steps, axis=1, out=steps)
            steps += pos[:, None]
            flat_hits = np.nonzero((steps < n).ravel())[0]
            hit_lanes.append(active[flat_hits // cap])
            hit_pos.append(steps.ravel()[flat_hits])
            pos = steps[:, -1]
            alive = pos < n - 1
            active = active[alive]
            pos = pos[alive]
    if not hit_lanes:
        return out
    # Both placement loops almost always finish in one pass; skip the copy.
    lane_idx = hit_lanes[0] if len(hit_lanes) == 1 else np.concatenate(hit_lanes)
    pos_idx = hit_pos[0] if len(hit_pos) == 1 else np.concatenate(hit_pos)
    if lane_idx.size == 0:
        return out

    # Conditional count for each placed position: inverse CDF of
    # Binomial(ℓ, y) given >= 1. The overwhelming majority of conditional
    # draws equal 1, so those short-circuit on a single gathered-threshold
    # test and only the remainder pays the row-offset searchsorted.
    ccdf = np.cumsum(_binomial_pmf_rows(ell, y)[:, 1:], axis=1)
    ccdf /= ccdf[:, -1:]
    ccdf[:, -1] = 1.0
    row_of_lane = lane_idx % rows
    u2 = rng.random(lane_idx.size)
    values = np.ones(lane_idx.size, dtype=np.int32)
    deeper = u2 > ccdf[row_of_lane, 0]
    if deeper.any():
        rows_d = row_of_lane[deeper]
        flat_cdf = (ccdf + np.arange(rows, dtype=float)[:, None]).ravel()
        found = np.searchsorted(flat_cdf, u2[deeper] + rows_d, side="left")
        values[deeper] = (found - rows_d * ell + 1).astype(np.int32)
    if flipped.any():
        values = np.where(flipped[row_of_lane], ell - values, values)
    lanes2d[lane_idx, pos_idx] = values
    return out


def _record_tier_rows(
    metrics: MetricsRegistry,
    zeros: np.ndarray,
    ones: np.ndarray,
    sparse_rows: np.ndarray,
    scalar_rows: np.ndarray,
    histogram_rows: np.ndarray,
) -> None:
    """Count per-call tier routing of the ``"auto"`` strategy (rows per tier)."""
    help_text = "Replica rows routed to each batched_binomial_counts auto tier."
    for tier, rows in (
        ("consensus", int(np.count_nonzero(zeros)) + int(np.count_nonzero(ones))),
        ("sparse", int(np.count_nonzero(sparse_rows))),
        ("grouped", int(np.count_nonzero(scalar_rows))),
        ("histogram", int(np.count_nonzero(histogram_rows))),
    ):
        if rows:
            metrics.counter("repro_sampler_tier_rows_total", help_text, tier=tier).inc(rows)


def batched_binomial_counts(
    rng: np.random.Generator,
    ell: int,
    x: np.ndarray,
    blocks: int,
    n: int,
    method: str = "auto",
) -> np.ndarray:
    """Draw a ``(blocks, A, n)`` tensor of ``Binomial(ℓ, x_r)`` counts.

    Row ``r`` of every block holds ``n`` iid ``Binomial(ell, x[r])`` draws —
    the batched analogue of one :class:`BinomialCountSampler` call per
    replica. All methods are exact in distribution (up to float64 rounding of
    the pmf, the same resolution every float-p sampler has):

    * ``"binomial"`` — one broadcast ``rng.binomial`` call. Reference
      implementation; numpy pays its per-draw distribution setup for every
      element when ``p`` is an array, so this is the slowest.
    * ``"histogram"`` — sufficient-statistic draw for every row (see
      :func:`_histogram_binomial_rows`).
    * ``"sparse"`` — geometric-gap placement of the non-modal draws for
      every row (see :func:`_sparse_binomial_rows`); intended for rows near
      one end, where it costs O(non-modal draws) instead of O(elements).
    * ``"auto"`` (default) — tiered: rows at exactly ``x ∈ {0, 1}`` (consensus
      configurations, the bulk of stability-window rounds) are deterministic
      fills; near-consensus rows (``ℓ·min(x, 1-x) ≤ 0.4``, a band wide
      enough to cover the noisy-FET hover fractions) use the sparse
      geometric-gap generator; rows hugging one end less tightly
      (``ℓ·min(x, 1-x) ≤ 3``) use numpy's scalar-p generator grouped by
      distinct ``x`` value, where its inversion loop is short; remaining
      rows use the histogram draw. This is what makes many-replica
      simulation decisively faster than per-trial loops — the draw itself
      gets cheaper, not just the Python overhead.
    """
    with span("draw_tier", method=method):
        return _batched_binomial_counts(rng, ell, x, blocks, n, method)


def _batched_binomial_counts(
    rng: np.random.Generator,
    ell: int,
    x: np.ndarray,
    blocks: int,
    n: int,
    method: str,
) -> np.ndarray:
    if ell < 0:
        raise ValueError(f"ell must be non-negative, got {ell}")
    if blocks < 0:
        raise ValueError(f"blocks must be non-negative, got {blocks}")
    if method not in ("auto", "histogram", "binomial", "sparse"):
        raise ValueError(f"unknown method {method!r}")
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"x must be a 1-d per-replica vector, got shape {x.shape}")
    if x.size and (x.min() < 0.0 or x.max() > 1.0):
        raise ValueError("probabilities must lie in [0, 1]")
    replicas = x.shape[0]
    if ell == 0 or replicas == 0 or blocks == 0 or n == 0:
        return np.zeros((blocks, replicas, n), dtype=np.int64)
    if method == "binomial":
        return rng.binomial(ell, x[None, :, None], size=(blocks, replicas, n))
    if method == "histogram":
        return _histogram_binomial_rows(rng, ell, x, blocks, n)
    if method == "sparse":
        return _sparse_binomial_rows(rng, ell, x, blocks, n)
    zeros = x == 0.0
    ones = x == 1.0
    tail = ell * np.minimum(x, 1.0 - x)
    extreme = ~zeros & ~ones
    sparse_rows = extreme & (tail <= _SPARSE_CUTOFF)
    scalar_rows = extreme & ~sparse_rows & (tail <= _INVERSION_CUTOFF)
    histogram_rows = extreme & (tail > _INVERSION_CUTOFF)
    metrics = current_registry()
    if metrics is not None:
        _record_tier_rows(metrics, zeros, ones, sparse_rows, scalar_rows, histogram_rows)
    # Single-strategy fast paths — the overwhelmingly common rounds (all
    # replicas in lock-step near one end, or all at consensus) skip the
    # allocate-and-scatter entirely.
    if zeros.all():
        return np.zeros((blocks, replicas, n), dtype=np.int32)
    if ones.all():
        return np.full((blocks, replicas, n), ell, dtype=np.int32)
    if sparse_rows.all():
        return _sparse_binomial_rows(rng, ell, x, blocks, n)
    if scalar_rows.all() and (x == x[0]).all():
        return rng.binomial(ell, x[0], size=(blocks, replicas, n))
    if histogram_rows.all():
        return _histogram_binomial_rows(rng, ell, x, blocks, n)
    out = np.empty((blocks, replicas, n), dtype=np.int32)
    if zeros.any():
        out[:, zeros, :] = 0
    if ones.any():
        out[:, ones, :] = ell
    if sparse_rows.any():
        indices = np.nonzero(sparse_rows)[0]
        out[:, indices, :] = _sparse_binomial_rows(rng, ell, x[indices], blocks, n)
    if scalar_rows.any():
        indices = np.nonzero(scalar_rows)[0]
        values, inverse = np.unique(x[indices], return_inverse=True)
        for j, value in enumerate(values):
            group = indices[inverse == j]
            out[:, group, :] = rng.binomial(ell, value, size=(blocks, group.size, n))
    if histogram_rows.any():
        indices = np.nonzero(histogram_rows)[0]
        out[:, indices, :] = _histogram_binomial_rows(rng, ell, x[indices], blocks, n)
    return out


class BatchedBinomialSampler(BatchedSampler):
    """Exact-in-distribution fast sampler over an ``(R, n)`` batch.

    Within replica ``r`` with one-fraction ``x_r``, every count is an
    independent ``Binomial(ℓ, x_r)`` draw; the whole batch is served by one
    :func:`batched_binomial_counts` call keyed on the ``(R,)`` fraction
    vector. ``method`` selects the draw strategy (see the helper); the
    default ``"auto"`` tiering is what the throughput benchmark measures.
    """

    def __init__(self, method: str = "auto") -> None:
        if method not in ("auto", "histogram", "binomial", "sparse"):
            raise ValueError(f"unknown method {method!r}")
        self.method = method

    def _fractions(self, batch: "BatchedPopulation") -> np.ndarray:
        """Per-replica effective one-fractions; hook for noisy variants."""
        return batch.fraction_ones()

    def effective_fractions(self, batch: "BatchedPopulation") -> np.ndarray:
        """Public seam: the ``(R,)`` one-fraction vector draws are keyed on.

        The counts engine consumes the observation model through this method
        alone — it needs the effective fraction each agent samples against
        (noise included, for noisy variants) and draws its own multinomial
        transitions from it, so any sampler in the ``BatchedBinomialSampler``
        family works on the counts path without materializing per-agent
        draws. ``batch`` may be any object exposing ``fraction_ones()``.
        """
        return self._fractions(batch)

    def counts(
        self,
        batch: "BatchedPopulation",
        ell: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return self.count_blocks(batch, ell, 1, rng)[0]

    def count_blocks(
        self,
        batch: "BatchedPopulation",
        ell: int,
        blocks: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return batched_binomial_counts(
            rng, ell, self._fractions(batch), blocks, batch.n, self.method
        )

    def scalar(self) -> Sampler:
        return BinomialCountSampler()
