"""Protocol interface.

A protocol is the per-agent update rule executed synchronously each round. To
keep large-``n`` simulation fast, protocols are written in vectorized form:
one :meth:`Protocol.step` call computes the tentative next opinion of *every*
agent at once from the shared population snapshot and the protocol's internal
per-agent state arrays.

Self-stabilization contract
---------------------------
The adversary controls the full initial configuration: opinions *and* internal
state. Every protocol therefore implements :meth:`randomize_state`, which
draws a uniformly random valid internal state, and keeps all state in a plain
``dict[str, np.ndarray]`` so adversarial initializers can overwrite it
directly. Convergence results in this repository are always reported under
adversarial initialization unless stated otherwise.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from .population import PopulationState
from .sampling import Sampler

__all__ = ["Protocol", "ProtocolState"]

#: Internal per-agent protocol state: name -> array of shape (n,) or (k, n).
ProtocolState = dict[str, np.ndarray]


class Protocol(ABC):
    """Abstract synchronous-round protocol.

    Attributes
    ----------
    name:
        Short identifier used in tables and benchmark output.
    passive:
        ``True`` when the information revealed by an agent is exactly its
        opinion bit (the paper's passive-communication model). Non-passive
        baselines (decoupled messages) set this ``False``.
    """

    name: str = "protocol"
    passive: bool = True

    @abstractmethod
    def init_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        """Return the protocol's designated initial internal state.

        This is the "clean start" state. Self-stabilization experiments do
        not use it directly; they call :meth:`randomize_state`.
        """

    def randomize_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        """Return a uniformly random *valid* internal state (adversarial).

        Default: the clean initial state. Protocols with internal variables
        must override so the adversary truly controls them.
        """
        return self.init_state(n, rng)

    @abstractmethod
    def step(
        self,
        population: PopulationState,
        state: ProtocolState,
        sampler: Sampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Execute one synchronous round for all agents.

        Reads the population snapshot (opinions of round ``t``), performs the
        protocol's sampling through ``sampler``, mutates ``state`` in place to
        its round-``t+1`` value, and returns the tentative opinion vector for
        round ``t+1``. The engine installs the returned opinions and re-pins
        sources, so protocols may uniformly update everyone.
        """

    # ------------------------------------------------------------ accounting

    def samples_per_round(self) -> int:
        """Total number of PULL samples each agent draws per round."""
        return 0

    def memory_bits(self) -> float:
        """Bits of internal memory per agent beyond the opinion bit.

        Used by the memory benchmark (E-mem) to check the ``O(log ℓ)`` claim
        of Theorem 1. Protocols without internal state return 0.
        """
        return 0.0

    def describe(self) -> dict[str, Any]:
        """Structured description used by benchmark tables."""
        return {
            "name": self.name,
            "passive": self.passive,
            "samples_per_round": self.samples_per_round(),
            "memory_bits": self.memory_bits(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
