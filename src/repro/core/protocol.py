"""Protocol interface.

A protocol is the per-agent update rule executed synchronously each round. To
keep large-``n`` simulation fast, protocols are written in vectorized form:
one :meth:`Protocol.step` call computes the tentative next opinion of *every*
agent at once from the shared population snapshot and the protocol's internal
per-agent state arrays.

Self-stabilization contract
---------------------------
The adversary controls the full initial configuration: opinions *and* internal
state. Every protocol therefore implements :meth:`randomize_state`, which
draws a uniformly random valid internal state, and keeps all state in a plain
``dict[str, np.ndarray]`` so adversarial initializers can overwrite it
directly. Convergence results in this repository are always reported under
adversarial initialization unless stated otherwise.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

import numpy as np

from .population import PopulationState
from .sampling import BatchedSampler, Sampler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .batch import BatchedPopulation

__all__ = ["Protocol", "ProtocolState"]

#: Internal per-agent protocol state: name -> array of shape (n,) or (k, n).
ProtocolState = dict[str, np.ndarray]


class Protocol(ABC):
    """Abstract synchronous-round protocol.

    Attributes
    ----------
    name:
        Short identifier used in tables and benchmark output.
    passive:
        ``True`` when the information revealed by an agent is exactly its
        opinion bit (the paper's passive-communication model). Non-passive
        baselines (decoupled messages) set this ``False``.
    """

    name: str = "protocol"
    passive: bool = True
    #: ``True`` when :meth:`step_batch` is a genuinely vectorized override
    #: that advances all replicas with O(1) numpy calls; protocols that rely
    #: on the generic per-replica fallback leave it ``False`` so dispatchers
    #: (``run_trials(engine="auto")``) know the batched path is a fast path.
    batch_vectorized: bool = False
    #: ``True`` when the protocol exposes the sufficient-statistic count model
    #: (:meth:`count_states` / :meth:`step_counts` / the pmf hooks) consumed by
    #: the counts engine (``core/counts.py``). Requires that an agent's full
    #: behaviour is a function of its discrete state and the population
    #: one-fraction alone — no identity-dependent draws.
    counts_supported: bool = False

    @abstractmethod
    def init_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        """Return the protocol's designated initial internal state.

        This is the "clean start" state. Self-stabilization experiments do
        not use it directly; they call :meth:`randomize_state`.
        """

    def randomize_state(self, n: int, rng: np.random.Generator) -> ProtocolState:
        """Return a uniformly random *valid* internal state (adversarial).

        Default: the clean initial state. Protocols with internal variables
        must override so the adversary truly controls them.
        """
        return self.init_state(n, rng)

    def init_state_batch(
        self, replicas: int, n: int, rng: np.random.Generator
    ) -> ProtocolState:
        """Clean initial state for ``replicas`` independent replicas.

        Arrays gain a leading replica axis (``(R, *per_replica_shape)``).
        The generic fallback stacks per-replica :meth:`init_state` draws;
        protocols on the batched fast path override with one vectorized draw.
        """
        first = self.init_state(n, rng)
        if not first:
            return {}
        rest = [self.init_state(n, rng) for _ in range(replicas - 1)]
        return {key: np.stack([first[key]] + [state[key] for state in rest]) for key in first}

    def randomize_state_batch(
        self, replicas: int, n: int, rng: np.random.Generator
    ) -> ProtocolState:
        """Adversarial random state for ``replicas`` independent replicas.

        Same layout contract as :meth:`init_state_batch`.
        """
        first = self.randomize_state(n, rng)
        if not first:
            return {}
        rest = [self.randomize_state(n, rng) for _ in range(replicas - 1)]
        return {key: np.stack([first[key]] + [state[key] for state in rest]) for key in first}

    @abstractmethod
    def step(
        self,
        population: PopulationState,
        state: ProtocolState,
        sampler: Sampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Execute one synchronous round for all agents.

        Reads the population snapshot (opinions of round ``t``), performs the
        protocol's sampling through ``sampler``, mutates ``state`` in place to
        its round-``t+1`` value, and returns the tentative opinion vector for
        round ``t+1``. The engine installs the returned opinions and re-pins
        sources, so protocols may uniformly update everyone.
        """

    def step_batch(
        self,
        batch: "BatchedPopulation",
        states: ProtocolState,
        sampler: BatchedSampler,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Execute one synchronous round for every replica of a batch.

        ``states`` holds this protocol's state arrays with a leading replica
        axis (shape ``(A, *per_replica_shape)``); the method mutates them to
        their round-``t+1`` values and returns the ``(A, n)`` tentative
        opinion matrix. The batched engine installs the returned opinions and
        re-pins sources in every row.

        The default implementation is a generic per-replica fallback that
        drives each row through the scalar :meth:`step` with the sampler's
        single-replica equivalent — correct for every protocol, but it keeps
        the per-replica Python cost. Vectorized overrides advance all
        replicas at once (numpy broadcasting makes the scalar body work
        nearly verbatim on ``(A, n)`` arrays) and set
        ``batch_vectorized = True``.
        """
        scalar = sampler.scalar()
        out = np.empty_like(batch.opinions)
        for r in range(batch.replicas):
            replica_state = {key: value[r] for key, value in states.items()}
            out[r] = self.step(batch.replica(r), replica_state, scalar, rng)
            # Scalar steps may rebind state entries rather than mutate them in
            # place (FET does); fold the results back into the batched arrays.
            for key in states:
                states[key][r] = replica_state[key]
        return out

    # ---------------------------------------------------------- count model
    #
    # The sufficient-statistic interface behind ``engine="counts"``. A count
    # state is one point of the protocol's finite per-agent state space
    # (opinion bit plus internal variables); an exchangeable replica is then
    # fully described by its ``(S,)`` state-count vector and is stepped in
    # O(S) via multinomial transitions, independent of ``n``. Protocols that
    # implement the four hooks below set ``counts_supported = True``.

    def count_states(self) -> int:
        """Number of discrete per-agent states ``S`` in the count model."""
        raise NotImplementedError(
            f"{self.name} does not define a count model (counts_supported=False)"
        )

    def count_display(self) -> np.ndarray:
        """``(S,)`` uint8 vector: the opinion bit displayed by each state."""
        raise NotImplementedError(
            f"{self.name} does not define a count model (counts_supported=False)"
        )

    def count_init_state_pmf(self) -> np.ndarray:
        """``(2, S)`` rows: clean-start state distribution given opinion o.

        Row ``o`` is the probability vector over count states for an agent
        whose opinion bit is ``o`` and whose internal state was drawn by
        :meth:`init_state`.
        """
        raise NotImplementedError(
            f"{self.name} does not define a count model (counts_supported=False)"
        )

    def count_random_state_pmf(self) -> np.ndarray:
        """``(2, S)`` rows: adversarial-uniform state distribution given o.

        Row ``o`` is the distribution over count states for an agent with
        opinion ``o`` whose internal state was drawn by
        :meth:`randomize_state`.
        """
        raise NotImplementedError(
            f"{self.name} does not define a count model (counts_supported=False)"
        )

    def step_counts(
        self, counts: np.ndarray, x_eff: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Advance ``(A, S)`` state-count matrices one synchronous round.

        ``counts[a, s]`` is the number of non-source agents of replica ``a``
        in count state ``s``; ``x_eff`` is the ``(A,)`` effective one-fraction
        each agent's samples are drawn against (noise already applied by the
        engine's sampler seam). Draws per-state observation-count
        distributions multinomially, maps them through the decision rule, and
        returns the re-aggregated ``(A, S)`` int64 matrix — no per-agent
        arrays anywhere.
        """
        raise NotImplementedError(
            f"{self.name} does not define a count model (counts_supported=False)"
        )

    # ------------------------------------------------------------ accounting

    def samples_per_round(self) -> int:
        """Total number of PULL samples each agent draws per round."""
        return 0

    def memory_bits(self) -> float:
        """Bits of internal memory per agent beyond the opinion bit.

        Used by the memory benchmark (E-mem) to check the ``O(log ℓ)`` claim
        of Theorem 1. Protocols without internal state return 0.
        """
        return 0.0

    def describe(self) -> dict[str, Any]:
        """Structured description used by benchmark tables."""
        return {
            "name": self.name,
            "passive": self.passive,
            "samples_per_round": self.samples_per_round(),
            "memory_bits": self.memory_bits(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
