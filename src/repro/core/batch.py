"""Batched multi-replica simulation: R independent trials as one (R, n) system.

Every aggregate result in this repository is an average over many independent
trials of the *same* configuration: same ``n``, same source structure, same
protocol, different random streams. Under uniform-with-replacement ``PULL``
sampling the round update of a replica depends on the population only through
its one-fraction ``x_t`` — the same observation that makes
:class:`~repro.core.sampling.BinomialCountSampler` exact. R replicas can
therefore advance in lock-step as one matrix-shaped system:

* opinions live in a single ``(R, n)`` ``uint8`` matrix
  (:class:`BatchedPopulation`), sharing the source structure across rows;
* per-agent observations for the whole batch come from one
  :class:`~repro.core.sampling.BatchedSampler` call keyed on the ``(R,)``
  vector of per-replica one-fractions;
* per-agent protocol state is stacked the same way (leading replica axis), and
  vectorized protocols (``Protocol.batch_vectorized``) step every replica with
  a handful of numpy calls.

:class:`BatchedEngine` drives the batch with the exact semantics of
:class:`~repro.core.engine.SynchronousEngine.run`: per-replica stability-window
tracking, the same convergence-round accounting (``t_con`` = first round of
the final all-correct streak), and *retirement* — a replica whose streak
reaches the stability window is removed from the active working set, so
finished trials stop costing work and their state provably never changes
again. The working set is kept compact (converged rows are physically dropped,
not masked), so late rounds with few stragglers cost ``O(active × n)``, not
``O(R × n)``.

The batched path is exact in distribution, not bitwise identical to looping
:class:`~repro.core.engine.SynchronousEngine` over trials: replicas consume a
shared dynamics stream instead of per-trial streams. Trajectory- and
flip-recording consumers attach a :class:`~repro.trace.recorder.TraceRecorder`
(``run(recorder=...)``): the engine reports the full ``(R,)`` one-fraction
(and optionally flip-count) vector every round, with retired rows frozen at
their final value, so per-round logs survive retirement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..telemetry.registry import current_registry
from ..telemetry.spans import span
from .population import PopulationState
from .protocol import Protocol, ProtocolState
from .rng import as_rng
from .sampling import BatchedBinomialSampler, BatchedSampler

if TYPE_CHECKING:  # pragma: no cover - typing only; trace layers on core
    from ..trace.recorder import TraceRecorder

__all__ = [
    "BatchedPopulation",
    "BatchRunResult",
    "BatchedEngine",
    "run_protocol_batched",
    "stack_states",
]


class BatchedPopulation:
    """R replicas of one population as a single ``(R, n)`` opinion matrix.

    All replicas share the source structure (``source_mask``,
    ``source_preferences``, ``correct_opinion``, ``pin_each_round``); each row
    is an independent copy of the opinion vector. The per-replica one-counts
    are cached exactly like :class:`PopulationState` caches its scalar count;
    callers that write into ``opinions`` directly must call
    :meth:`invalidate_cache`.
    """

    def __init__(
        self,
        opinions: np.ndarray,
        source_mask: np.ndarray,
        source_preferences: np.ndarray,
        correct_opinion: int,
        pin_each_round: bool = True,
    ) -> None:
        self.opinions = np.asarray(opinions, dtype=np.uint8)
        self.source_mask = np.asarray(source_mask, dtype=bool)
        self.source_preferences = np.asarray(source_preferences, dtype=np.uint8)
        self.correct_opinion = int(correct_opinion)
        self.pin_each_round = bool(pin_each_round)
        if self.opinions.ndim != 2:
            raise ValueError(f"opinions must have shape (R, n), got {self.opinions.shape}")
        replicas, n = self.opinions.shape
        if replicas < 1:
            raise ValueError("batch needs at least one replica")
        if n < 2:
            raise ValueError(f"population needs at least 2 agents, got {n}")
        if self.source_mask.shape != (n,) or self.source_preferences.shape != (n,):
            raise ValueError("source_mask and source_preferences must share shape (n,)")
        if self.correct_opinion not in (0, 1):
            raise ValueError(f"correct_opinion must be 0 or 1, got {self.correct_opinion}")
        if not self.source_mask.any():
            raise ValueError("population must contain at least one source agent")
        if not np.isin(self.opinions, (0, 1)).all():
            raise ValueError("opinions must be 0/1 valued")
        self._ones_count: np.ndarray | None = None

    # ------------------------------------------------------------ constructors

    @classmethod
    def _trusted(
        cls,
        opinions: np.ndarray,
        source_mask: np.ndarray,
        source_preferences: np.ndarray,
        correct_opinion: int,
        pin_each_round: bool,
    ) -> "BatchedPopulation":
        """Wrap arrays known to satisfy the invariants, skipping the O(R·n)
        validation — for internal hot paths (row selection, stacking rows of
        already-validated populations)."""
        batch = object.__new__(cls)
        batch.opinions = opinions
        batch.source_mask = source_mask
        batch.source_preferences = source_preferences
        batch.correct_opinion = correct_opinion
        batch.pin_each_round = pin_each_round
        batch._ones_count = None
        return batch

    @classmethod
    def from_population(cls, population: PopulationState, replicas: int) -> "BatchedPopulation":
        """Tile one population into ``replicas`` identical rows."""
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        return cls(
            opinions=np.tile(population.opinions, (replicas, 1)),
            source_mask=population.source_mask.copy(),
            source_preferences=population.source_preferences.copy(),
            correct_opinion=population.correct_opinion,
            pin_each_round=population.pin_each_round,
        )

    @classmethod
    def from_populations(cls, populations: Sequence[PopulationState]) -> "BatchedPopulation":
        """Stack independently initialized populations of one configuration.

        Every population must share the source structure — the batch models R
        trials of the *same* system, only the random initial opinions differ.
        """
        if not populations:
            raise ValueError("need at least one population")
        first = populations[0]
        for pop in populations[1:]:
            if (
                pop.n != first.n
                or pop.correct_opinion != first.correct_opinion
                or pop.pin_each_round != first.pin_each_round
                or not np.array_equal(pop.source_mask, first.source_mask)
                or not np.array_equal(pop.source_preferences, first.source_preferences)
            ):
                raise ValueError("all replicas must share the same source structure")
        # Rows come from already-validated PopulationStates; skip re-validation.
        return cls._trusted(
            opinions=np.stack([pop.opinions for pop in populations]),
            source_mask=first.source_mask.copy(),
            source_preferences=first.source_preferences.copy(),
            correct_opinion=first.correct_opinion,
            pin_each_round=first.pin_each_round,
        )

    # ------------------------------------------------------------------ views

    @property
    def replicas(self) -> int:
        return int(self.opinions.shape[0])

    @property
    def n(self) -> int:
        return int(self.opinions.shape[1])

    @property
    def num_sources(self) -> int:
        return int(self.source_mask.sum())

    @property
    def nonsource_mask(self) -> np.ndarray:
        return ~self.source_mask

    def count_ones(self) -> np.ndarray:
        """Per-replica number of 1-opinions, shape ``(R,)``."""
        if self._ones_count is None:
            self._ones_count = self.opinions.sum(axis=1, dtype=np.int64)
        return self._ones_count

    def fraction_ones(self) -> np.ndarray:
        """Per-replica ``x_t``, shape ``(R,)``."""
        return self.count_ones() / self.n

    def invalidate_cache(self) -> None:
        """Drop the cached one-counts after a direct write into ``opinions``."""
        self._ones_count = None

    def replica(self, r: int) -> PopulationState:
        """Single-replica :class:`PopulationState` over row ``r``.

        The returned state is a read snapshot backed by a *view* of row ``r``;
        it shares the source arrays. Mutating it through its own methods
        rebinds its arrays and does not propagate back to the batch — the
        generic per-replica fallback writes results back explicitly.
        """
        return PopulationState(
            opinions=self.opinions[r],
            source_mask=self.source_mask,
            source_preferences=self.source_preferences,
            correct_opinion=self.correct_opinion,
            pin_each_round=self.pin_each_round,
        )

    # -------------------------------------------------------------- mutation

    def set_opinions(self, new_opinions: np.ndarray) -> None:
        """Replace all rows, then re-pin sources in every replica."""
        new_opinions = np.asarray(new_opinions, dtype=np.uint8)
        if new_opinions.shape != self.opinions.shape:
            raise ValueError("opinion matrix shape mismatch")
        self.opinions = new_opinions
        self.invalidate_cache()
        if self.pin_each_round:
            self.pin_sources()

    def pin_sources(self) -> None:
        """Force every source agent's opinion to its preference, in every row."""
        self.opinions[:, self.source_mask] = self.source_preferences[self.source_mask][None, :]
        self.invalidate_cache()

    def adversarial_opinions(
        self, opinions: np.ndarray, *, pin_sources: bool = True, validate: bool = True
    ) -> None:
        """Install an adversarial ``(R, n)`` opinion configuration.

        The batched analogue of :meth:`PopulationState.adversarial_opinions`;
        ``validate=False`` skips the O(R·n) 0/1 check for initializers whose
        matrices are 0/1 by construction.
        """
        opinions = np.asarray(opinions, dtype=np.uint8)
        if opinions.shape != self.opinions.shape:
            raise ValueError("opinion matrix shape mismatch")
        if validate and not np.isin(opinions, (0, 1)).all():
            raise ValueError("opinions must be 0/1 valued")
        self.opinions = opinions.copy()
        self.invalidate_cache()
        if pin_sources:
            self.pin_sources()

    # ------------------------------------------------------------ predicates

    def at_consensus(self) -> np.ndarray:
        """Per-replica: every agent outputs the same opinion. Shape ``(R,)``."""
        ones = self.count_ones()
        return (ones == 0) | (ones == self.n)

    def at_correct_consensus(self) -> np.ndarray:
        """Per-replica: every agent outputs the correct opinion. Shape ``(R,)``."""
        ones = self.count_ones()
        return ones == self.n if self.correct_opinion == 1 else ones == 0

    def nonsource_correct_fraction(self) -> np.ndarray:
        """Per-replica fraction of non-source agents on the correct opinion."""
        nonsource = self.opinions[:, self.nonsource_mask]
        if nonsource.shape[1] == 0:
            return np.ones(self.replicas)
        return (nonsource == self.correct_opinion).mean(axis=1)

    # ----------------------------------------------------------------- misc

    def select(self, rows: np.ndarray) -> "BatchedPopulation":
        """New batch holding only ``rows`` (boolean mask or index array).

        Opinion rows are copied; the shared source structure is not. Used by
        the engine to compact the working set when replicas retire.
        """
        sub = BatchedPopulation._trusted(
            opinions=self.opinions[rows],
            source_mask=self.source_mask,
            source_preferences=self.source_preferences,
            correct_opinion=self.correct_opinion,
            pin_each_round=self.pin_each_round,
        )
        if self._ones_count is not None:
            sub._ones_count = self._ones_count[rows]
        return sub

    def copy(self) -> "BatchedPopulation":
        return BatchedPopulation._trusted(
            opinions=self.opinions.copy(),
            source_mask=self.source_mask.copy(),
            source_preferences=self.source_preferences.copy(),
            correct_opinion=self.correct_opinion,
            pin_each_round=self.pin_each_round,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchedPopulation(replicas={self.replicas}, n={self.n})"


def stack_states(states: Sequence[ProtocolState]) -> ProtocolState:
    """Stack per-replica protocol states along a new leading replica axis.

    ``R`` states with arrays of shape ``s`` become one state with arrays of
    shape ``(R, *s)``. Stateless protocols (empty dicts) stack to an empty
    dict.
    """
    if not states:
        raise ValueError("need at least one state")
    keys = set(states[0])
    for state in states[1:]:
        if set(state) != keys:
            raise ValueError("all replica states must hold the same variables")
    return {key: np.stack([state[key] for state in states]) for key in keys}


@dataclass
class BatchRunResult:
    """Per-replica outcome of a :class:`BatchedEngine` run.

    Attributes
    ----------
    converged:
        ``(R,)`` bool — replica reached the correct consensus and held it for
        the stability window before ``max_rounds``.
    rounds:
        ``(R,)`` int — the replica's ``t_con`` (first round of the final
        streak) when converged, else the number of rounds executed; exactly
        :attr:`RunResult.rounds` of the sequential engine, per replica.
    rounds_executed:
        ``(R,)`` int — synchronous rounds actually simulated for the replica
        (its retirement round, or ``max_rounds``). Throughput accounting.
    final_fractions:
        ``(R,)`` float — one-fraction of each replica's final configuration.
    """

    converged: np.ndarray
    rounds: np.ndarray
    rounds_executed: np.ndarray
    final_fractions: np.ndarray

    @property
    def replicas(self) -> int:
        return int(self.converged.shape[0])

    @property
    def successes(self) -> int:
        return int(np.count_nonzero(self.converged))

    def times(self) -> np.ndarray:
        """Convergence rounds of the successful replicas, as floats."""
        return self.rounds[self.converged].astype(float)

    def summary(self) -> dict:
        return {
            "replicas": self.replicas,
            "successes": self.successes,
            "total_rounds_executed": int(self.rounds_executed.sum()),
        }


class BatchedEngine:
    """Lock-step driver for R replicas with per-replica retirement.

    Parameters
    ----------
    protocol:
        The update rule; stepped through :meth:`Protocol.step_batch` (the
        vectorized implementation when the protocol provides one, else the
        generic per-replica fallback). One protocol instance serves the whole
        batch, so instance attributes must be round configuration only — all
        per-agent state belongs in the state dict, which is the existing
        contract of :class:`Protocol`.
    batch:
        The replicas to simulate. After :meth:`run`, ``batch.opinions`` holds
        every replica's *final* configuration (frozen at retirement).
    sampler:
        Batched PULL sampler; defaults to the tiered exact
        :class:`BatchedBinomialSampler`.
    rng:
        Generator or integer seed for the shared dynamics stream.
    states:
        Batched internal protocol state: arrays with a leading replica axis,
        e.g. from :func:`stack_states`. Defaults to stacking R fresh
        ``protocol.init_state`` draws. The engine owns the dict (it compacts
        it on retirement).
    """

    def __init__(
        self,
        protocol: Protocol,
        batch: BatchedPopulation,
        *,
        sampler: BatchedSampler | None = None,
        rng: int | np.random.Generator | None = None,
        states: ProtocolState | None = None,
    ) -> None:
        self.protocol = protocol
        self.batch = batch
        self.sampler = sampler if sampler is not None else BatchedBinomialSampler()
        self.rng = as_rng(rng)
        if states is None:
            states = protocol.init_state_batch(batch.replicas, batch.n, self.rng)
        self.states = states
        self.round_index = 0
        self._consumed = False
        # Mirror SynchronousEngine: pin once up-front so a sloppy caller cannot
        # start with a deviating source opinion in any replica.
        if batch.pin_each_round:
            batch.pin_sources()

    def run(
        self,
        max_rounds: int,
        *,
        stability_rounds: int = 2,
        stop_condition: Callable[[BatchedPopulation], np.ndarray] | None = None,
        recorder: "TraceRecorder | None" = None,
        linger_rounds: int = 0,
    ) -> BatchRunResult:
        """Run until every replica converged (condition held for
        ``stability_rounds`` consecutive observations) or ``max_rounds``.

        ``stop_condition`` optionally replaces the correct-consensus test; it
        must map a :class:`BatchedPopulation` to an ``(A,)`` boolean vector
        over its rows (e.g. :meth:`BatchedPopulation.at_consensus`).

        ``recorder`` optionally captures per-replica trajectories: the engine
        reports the full ``(R,)`` one-fraction vector (and, when the recorder
        asks for them, per-replica flip counts) for round 0 and after every
        executed round, with retired rows frozen at their final values.

        ``linger_rounds`` keeps a replica running that many extra rounds
        after its convergence is detected before retiring it — convergence
        accounting (``converged``/``rounds``) is locked at detection and not
        revisited. This is the settle-window hook: the sequential θ measure
        keeps stepping an engine after its stop condition fired, and linger
        reproduces that per replica under retirement (the extra rounds are
        allowed to run past ``max_rounds``, exactly as sequential settle
        stepping does).

        Single-shot: retirement compacts the protocol state down to the
        replicas that were still running, so a second ``run`` on the same
        engine has no coherent state to resume from and is rejected. Build a
        fresh engine (or use the sequential engine, whose ``run`` can be
        re-entered) to continue simulating.
        """
        with span("engine.run", engine="batched"):
            return self._run(
                max_rounds,
                stability_rounds=stability_rounds,
                stop_condition=stop_condition,
                recorder=recorder,
                linger_rounds=linger_rounds,
            )

    def _run(
        self,
        max_rounds: int,
        *,
        stability_rounds: int,
        stop_condition: Callable[[BatchedPopulation], np.ndarray] | None,
        recorder: "TraceRecorder | None",
        linger_rounds: int,
    ) -> BatchRunResult:
        if self._consumed:
            raise RuntimeError(
                "BatchedEngine.run is single-shot; build a fresh engine to run again"
            )
        self._consumed = True
        # Same bound and message as run_trials: a 0-round budget cannot
        # observe anything and previously slipped through as an instant
        # "nothing converged" result here while the harness rejected it.
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        if stability_rounds < 1:
            raise ValueError(f"stability_rounds must be >= 1, got {stability_rounds}")
        if linger_rounds < 0:
            raise ValueError(f"linger_rounds must be non-negative, got {linger_rounds}")
        condition = stop_condition or BatchedPopulation.at_correct_consensus
        metrics = current_registry()
        run_start = time.perf_counter() if metrics is not None else 0.0

        total = self.batch.replicas
        converged = np.zeros(total, dtype=bool)
        rounds = np.zeros(total, dtype=np.int64)
        rounds_executed = np.zeros(total, dtype=np.int64)

        # Compact working set: only rows still running. ``ids`` maps working
        # row -> replica index in the full batch.
        ids = np.arange(total)
        work = self.batch.select(ids)
        states = self.states

        wants_flips = recorder is not None and getattr(recorder, "record_flips", False)
        if recorder is not None:
            prefs = self.batch.source_preferences[self.batch.source_mask]
            recorder.bind(
                replicas=total,
                n=self.batch.n,
                num_sources=self.batch.num_sources,
                sources_correct=int((prefs == self.batch.correct_opinion).sum()),
                correct_opinion=self.batch.correct_opinion,
                pin_each_round=self.batch.pin_each_round,
            )
            # Full-batch value vectors; retired rows simply stop being
            # written, which freezes them at their final values.
            current_x = work.fraction_ones().astype(float)
            current_flips = np.zeros(total, dtype=np.int64)
            recorder.on_round(0, current_x, current_flips if wants_flips else None)

        ok = condition(work)
        streak = ok.astype(np.int64)
        first_hit = np.where(ok, 0, -1)
        # Lock/linger bookkeeping: a replica whose streak reaches the
        # stability window is *locked* (its outcome is final) but keeps
        # stepping for ``linger_rounds`` more rounds before it retires.
        locked = np.zeros(total, dtype=bool)
        locked_round = np.full(total, -1, dtype=np.int64)
        countdown = np.zeros(total, dtype=np.int64)
        rounds_done = 0

        while True:
            newly_locked = ~locked & (streak >= stability_rounds)
            if newly_locked.any():
                locked_round = np.where(newly_locked, first_hit, locked_round)
                countdown = np.where(newly_locked, linger_rounds, countdown)
                locked = locked | newly_locked
            done = locked & (countdown <= 0)
            if rounds_done >= max_rounds:
                # Budget exhausted: unconverged replicas stop here; locked
                # replicas mid-linger keep stepping their settle window out.
                done = done | ~locked
            if done.any():
                retired = ids[done]
                conv = locked[done]
                converged[retired] = conv
                rounds[retired] = np.where(conv, locked_round[done], rounds_done)
                rounds_executed[retired] = rounds_done
                self.batch.opinions[retired] = work.opinions[done]
                keep = ~done
                states = {key: value[keep] for key, value in states.items()}
                ids = ids[keep]
                streak = streak[keep]
                first_hit = first_hit[keep]
                locked = locked[keep]
                locked_round = locked_round[keep]
                countdown = countdown[keep]
                if ids.size:
                    work = work.select(keep)
            if ids.size == 0:
                break
            old = work.opinions.copy() if wants_flips else None
            new = self.protocol.step_batch(work, states, self.sampler, self.rng)
            work.set_opinions(new)
            rounds_done += 1
            self.round_index += 1
            countdown = countdown - locked
            ok = condition(work)
            # Locked replicas stop tracking the condition: their outcome was
            # sealed at detection (mirrors sequential settle stepping, which
            # never re-checks).
            tracking = ~locked
            newly_ok = ok & (streak == 0) & tracking
            streak = np.where(tracking, np.where(ok, streak + 1, 0), streak)
            first_hit = np.where(
                tracking,
                np.where(ok, np.where(newly_ok, rounds_done, first_hit), -1),
                first_hit,
            )
            if recorder is not None:
                current_x[ids] = work.fraction_ones()
                if wants_flips:
                    current_flips[:] = 0
                    current_flips[ids] = np.count_nonzero(work.opinions != old, axis=1)
                    recorder.on_round(rounds_done, current_x, current_flips)
                else:
                    recorder.on_round(rounds_done, current_x, None)

        self.states = states
        self.batch.invalidate_cache()
        if metrics is not None:
            metrics.counter(
                "repro_engine_rounds_total",
                "Lock-step synchronous rounds executed, by engine.",
                engine="batched",
            ).inc(rounds_done)
            metrics.counter(
                "repro_engine_replicas_retired_total",
                "Replicas that left the batched working set (converged, "
                "lingered out, or budget-exhausted).",
            ).inc(total)
            metrics.histogram(
                "repro_engine_run_seconds",
                "Wall-clock seconds per engine run() call, by engine.",
                engine="batched",
            ).observe(time.perf_counter() - run_start)
        return BatchRunResult(
            converged=converged,
            rounds=rounds,
            rounds_executed=rounds_executed,
            final_fractions=self.batch.fraction_ones(),
        )


def run_protocol_batched(
    protocol: Protocol,
    population: PopulationState,
    replicas: int,
    max_rounds: int,
    *,
    sampler: BatchedSampler | None = None,
    rng: int | np.random.Generator | None = None,
    states: ProtocolState | None = None,
    stability_rounds: int = 2,
    recorder: "TraceRecorder | None" = None,
) -> BatchRunResult:
    """One-shot convenience: tile ``population`` and run the batched engine."""
    batch = BatchedPopulation.from_population(population, replicas)
    engine = BatchedEngine(protocol, batch, sampler=sampler, rng=rng, states=states)
    return engine.run(max_rounds, stability_rounds=stability_rounds, recorder=recorder)
